package stream

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// NodeID identifies a node within a Pipeline.
type NodeID int

// MaxWatermark flushes every window when injected (end of stream).
const MaxWatermark = vclock.Time(math.MaxInt64)

type nodeKind int

const (
	nodeSource nodeKind = iota + 1
	nodeOperator
	nodeSink
)

type edge struct {
	to   NodeID
	port int
}

type pipelineNode struct {
	id      NodeID
	name    string
	kind    nodeKind
	handler Handler
	edges   []edge
	// collected holds sink output.
	collected []Event
}

// Pipeline is a single-process DAG of stream operators with deterministic
// execution: events are delivered depth-first in injection order and
// watermarks propagate in topological order, so runs are exactly
// repeatable. Pipeline is not safe for concurrent use.
type Pipeline struct {
	nodes []*pipelineNode
	topo  []NodeID // cached topological order, invalidated on mutation
	wm    vclock.Time
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline { return &Pipeline{} }

// AddSource declares an event entry point.
func (p *Pipeline) AddSource(name string) NodeID { return p.add(name, nodeSource, nil) }

// AddNode adds an operator node.
func (p *Pipeline) AddNode(name string, h Handler) NodeID {
	if h == nil {
		panic("stream: AddNode with nil handler")
	}
	return p.add(name, nodeOperator, h)
}

// AddSink adds a terminal node that collects its input events.
func (p *Pipeline) AddSink(name string) NodeID { return p.add(name, nodeSink, nil) }

func (p *Pipeline) add(name string, kind nodeKind, h Handler) NodeID {
	id := NodeID(len(p.nodes))
	p.nodes = append(p.nodes, &pipelineNode{id: id, name: name, kind: kind, handler: h})
	p.topo = nil
	return id
}

// Connect wires from→to delivering into the given input port of `to`
// (port 0 for single-input operators; joins use ports 0 and 1).
func (p *Pipeline) Connect(from, to NodeID, port int) error {
	if int(from) >= len(p.nodes) || int(to) >= len(p.nodes) || from < 0 || to < 0 {
		return fmt.Errorf("stream: connect %d->%d: unknown node", from, to)
	}
	if p.nodes[to].kind == nodeSource {
		return fmt.Errorf("stream: node %q is a source and cannot receive input", p.nodes[to].name)
	}
	if p.nodes[from].kind == nodeSink {
		return fmt.Errorf("stream: node %q is a sink and cannot produce output", p.nodes[from].name)
	}
	p.nodes[from].edges = append(p.nodes[from].edges, edge{to: to, port: port})
	p.topo = nil
	return nil
}

// MustConnect is Connect that panics on error.
func (p *Pipeline) MustConnect(from, to NodeID, port int) {
	if err := p.Connect(from, to, port); err != nil {
		panic(err)
	}
}

// Handler returns the operator handler at the given node (nil for sources
// and sinks) — used for state snapshot/restore.
func (p *Pipeline) Handler(id NodeID) Handler { return p.nodes[id].handler }

// Inject delivers one event into a source node, flowing it through the
// whole DAG depth-first.
func (p *Pipeline) Inject(src NodeID, e Event) error {
	n := p.nodes[src]
	if n.kind != nodeSource {
		return fmt.Errorf("stream: node %q is not a source", n.name)
	}
	p.forward(n, e)
	return nil
}

func (p *Pipeline) forward(n *pipelineNode, e Event) {
	for _, ed := range n.edges {
		p.deliver(ed.to, ed.port, e)
	}
}

func (p *Pipeline) deliver(id NodeID, port int, e Event) {
	n := p.nodes[id]
	switch n.kind {
	case nodeSink:
		n.collected = append(n.collected, e)
	case nodeOperator:
		n.handler.OnEvent(port, e, func(out Event) { p.forward(n, out) })
	case nodeSource:
		panic("stream: event delivered to a source")
	}
}

// Watermark advances the event-time watermark, flushing windows. The
// watermark must not regress.
func (p *Pipeline) Watermark(wm vclock.Time) error {
	if wm < p.wm {
		return fmt.Errorf("stream: watermark regressed from %v to %v", p.wm, wm)
	}
	p.wm = wm
	order, err := p.topoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		n := p.nodes[id]
		if n.kind != nodeOperator {
			continue
		}
		n.handler.OnWatermark(wm, func(out Event) { p.forward(n, out) })
	}
	return nil
}

func (p *Pipeline) topoOrder() ([]NodeID, error) {
	if p.topo != nil {
		return p.topo, nil
	}
	indeg := make([]int, len(p.nodes))
	for _, n := range p.nodes {
		for _, e := range n.edges {
			indeg[e.to]++
		}
	}
	var ready []NodeID
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, NodeID(id))
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []NodeID
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var next []NodeID
		for _, e := range p.nodes[id].edges {
			indeg[e.to]--
			if indeg[e.to] == 0 {
				next = append(next, e.to)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		ready = append(ready, next...)
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	if len(order) != len(p.nodes) {
		return nil, fmt.Errorf("stream: pipeline has a cycle")
	}
	p.topo = order
	return order, nil
}

// SinkEvents returns the events collected at a sink so far.
func (p *Pipeline) SinkEvents(id NodeID) []Event {
	n := p.nodes[id]
	out := make([]Event, len(n.collected))
	copy(out, n.collected)
	return out
}

// Inputs maps source nodes to their (event-time-ordered) input streams.
type Inputs map[NodeID][]Event

// RunConfig controls Run.
type RunConfig struct {
	// WatermarkEvery injects a watermark each time event time crosses a
	// multiple of this interval. Zero disables periodic watermarks (a
	// final MaxWatermark is always injected).
	WatermarkEvery time.Duration
}

// Run merges the input streams in event-time order (ties broken by source
// ID), flows every event through the DAG with periodic watermarks, and
// finishes with a MaxWatermark flushing all windows.
func (p *Pipeline) Run(inputs Inputs, cfg RunConfig) error {
	if _, err := p.topoOrder(); err != nil {
		return err
	}
	type cursor struct {
		src NodeID
		idx int
	}
	srcs := detutil.SortedKeys(inputs)
	for _, src := range srcs {
		evs := inputs[src]
		if p.nodes[src].kind != nodeSource {
			return fmt.Errorf("stream: input for non-source node %q", p.nodes[src].name)
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Time < evs[i-1].Time {
				return fmt.Errorf("stream: input for %q not time-ordered at %d", p.nodes[src].name, i)
			}
		}
	}

	cursors := make([]cursor, len(srcs))
	for i, s := range srcs {
		cursors[i] = cursor{src: s}
	}

	nextWM := vclock.Time(0)
	if cfg.WatermarkEvery > 0 {
		nextWM = vclock.Time(cfg.WatermarkEvery)
	}
	for {
		// Pick the earliest pending event across sources.
		best := -1
		for i, c := range cursors {
			evs := inputs[c.src]
			if c.idx >= len(evs) {
				continue
			}
			if best == -1 || evs[c.idx].Time < inputs[cursors[best].src][cursors[best].idx].Time {
				best = i
			}
		}
		if best == -1 {
			break
		}
		c := &cursors[best]
		e := inputs[c.src][c.idx]
		c.idx++
		for cfg.WatermarkEvery > 0 && e.Time >= nextWM {
			if err := p.Watermark(nextWM); err != nil {
				return err
			}
			nextWM += vclock.Time(cfg.WatermarkEvery)
		}
		if err := p.Inject(c.src, e); err != nil {
			return err
		}
	}
	return p.Watermark(MaxWatermark)
}
