package stream

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// SlidingWindowAggregate is a keyed sliding-window incremental
// aggregation: windows of length Size start every Slide, so each event
// contributes to ⌈Size/Slide⌉ overlapping windows; a window emits when
// the watermark passes its end.
//
// Slide must evenly divide Size (aligned windows, as in Flink's sliding
// event-time windows). Emitted events carry the window's maximum observed
// event time, like WindowAggregate. Stateful; implements Snapshotter.
type SlidingWindowAggregate struct {
	// Size is the window length; Slide the start interval (0 < Slide ≤
	// Size, Size%Slide == 0).
	Size  time.Duration
	Slide time.Duration
	// Init, Add, Result as in WindowAggregate.
	Init   func() any
	Add    func(acc any, e Event) any
	Result func(key string, acc any) any

	windows map[vclock.Time]*windowState
}

var (
	_ Handler     = (*SlidingWindowAggregate)(nil)
	_ Snapshotter = (*SlidingWindowAggregate)(nil)
)

func (w *SlidingWindowAggregate) validate() {
	if w.Slide <= 0 || w.Size <= 0 || w.Slide > w.Size || w.Size%w.Slide != 0 {
		panic(fmt.Sprintf("stream: invalid sliding window size=%v slide=%v", w.Size, w.Slide))
	}
}

// windowStarts returns the start times of every window containing t.
func (w *SlidingWindowAggregate) windowStarts(t vclock.Time) []vclock.Time {
	first := windowStart(t, w.Slide) // latest window start at or before t
	n := int(w.Size / w.Slide)
	starts := make([]vclock.Time, 0, n)
	for i := 0; i < n; i++ {
		s := first - vclock.Time(i)*vclock.Time(w.Slide)
		if t >= s && t < s+vclock.Time(w.Size) {
			starts = append(starts, s)
		}
	}
	return starts
}

// OnEvent implements Handler.
func (w *SlidingWindowAggregate) OnEvent(_ int, e Event, emit Emit) {
	w.validate()
	if w.windows == nil {
		w.windows = make(map[vclock.Time]*windowState)
	}
	for _, start := range w.windowStarts(e.Time) {
		ws := w.windows[start]
		if ws == nil {
			ws = &windowState{Accs: make(map[string]any)}
			w.windows[start] = ws
		}
		if e.Time > ws.MaxTime {
			ws.MaxTime = e.Time
		}
		acc, ok := ws.Accs[e.Key]
		if !ok {
			acc = w.Init()
		}
		ws.Accs[e.Key] = w.Add(acc, e)
	}
}

// OnWatermark implements Handler: windows ending at or before wm emit in
// ascending window order with sorted keys.
func (w *SlidingWindowAggregate) OnWatermark(wm vclock.Time, emit Emit) {
	for _, start := range detutil.SortedKeys(w.windows) {
		if start+vclock.Time(w.Size) > wm {
			continue
		}
		ws := w.windows[start]
		for _, k := range detutil.SortedKeys(ws.Accs) {
			v := ws.Accs[k]
			if w.Result != nil {
				v = w.Result(k, v)
			}
			emit(Event{Time: ws.MaxTime, Key: k, Value: v})
		}
		delete(w.windows, start)
	}
}

// StateSize returns the number of live (window, key) accumulators.
func (w *SlidingWindowAggregate) StateSize() int {
	total := 0
	for _, ws := range w.windows {
		total += len(ws.Accs)
	}
	return total
}

// SnapshotState implements Snapshotter.
func (w *SlidingWindowAggregate) SnapshotState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w.windows); err != nil {
		return nil, fmt.Errorf("sliding window snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements Snapshotter.
func (w *SlidingWindowAggregate) RestoreState(data []byte) error {
	var windows map[vclock.Time]*windowState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&windows); err != nil {
		return fmt.Errorf("sliding window restore: %w", err)
	}
	if windows == nil {
		windows = make(map[vclock.Time]*windowState)
	}
	w.windows = windows
	return nil
}

// SlidingCount returns a SlidingWindowAggregate counting events per key.
func SlidingCount(size, slide time.Duration) *SlidingWindowAggregate {
	return &SlidingWindowAggregate{
		Size:  size,
		Slide: slide,
		Init:  func() any { return int64(0) },
		Add:   func(acc any, _ Event) any { return acc.(int64) + 1 },
	}
}
