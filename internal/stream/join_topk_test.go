package stream

import (
	"reflect"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestWindowJoinMatchesWithinWindow(t *testing.T) {
	j := &WindowJoin{Size: 10 * time.Second}
	var out []Event
	emit := func(e Event) { out = append(out, e) }

	j.OnEvent(0, ev(1*time.Second, "k", "L1"), emit)
	if len(out) != 0 {
		t.Fatalf("unmatched left emitted %v", out)
	}
	j.OnEvent(1, ev(2*time.Second, "k", "R1"), emit)
	if len(out) != 1 {
		t.Fatalf("join out = %v, want 1", out)
	}
	pair := out[0].Value.([2]any)
	if pair[0] != "L1" || pair[1] != "R1" {
		t.Fatalf("joined pair = %v", pair)
	}
	if out[0].Time != vclock.Time(2*time.Second) {
		t.Fatalf("join time = %v, want max(1s,2s)", out[0].Time)
	}
	// Another left joins the buffered right.
	j.OnEvent(0, ev(3*time.Second, "k", "L2"), emit)
	if len(out) != 2 {
		t.Fatalf("second join missing: %v", out)
	}
}

func TestWindowJoinRespectsKeyAndWindow(t *testing.T) {
	j := &WindowJoin{Size: 10 * time.Second}
	var out []Event
	emit := func(e Event) { out = append(out, e) }
	j.OnEvent(0, ev(1*time.Second, "a", 1), emit)
	j.OnEvent(1, ev(2*time.Second, "b", 2), emit)  // different key
	j.OnEvent(1, ev(12*time.Second, "a", 3), emit) // different window
	if len(out) != 0 {
		t.Fatalf("cross-key/window join emitted %v", out)
	}
}

func TestWindowJoinMergeFn(t *testing.T) {
	j := &WindowJoin{
		Size:  time.Second,
		Merge: func(l, r Event) any { return l.Value.(int) + r.Value.(int) },
	}
	var out []Event
	j.OnEvent(0, ev(0, "k", 2), func(e Event) { out = append(out, e) })
	j.OnEvent(1, ev(0, "k", 3), func(e Event) { out = append(out, e) })
	if len(out) != 1 || out[0].Value != 5 {
		t.Fatalf("merge out = %v", out)
	}
}

func TestWindowJoinEviction(t *testing.T) {
	j := &WindowJoin{Size: 10 * time.Second}
	noEmit := func(Event) {}
	j.OnEvent(0, ev(1*time.Second, "k", "old"), noEmit)
	if j.StateSize() != 1 {
		t.Fatalf("StateSize = %d", j.StateSize())
	}
	j.OnWatermark(vclock.Time(10*time.Second), noEmit)
	if j.StateSize() != 0 {
		t.Fatalf("state not evicted: %d", j.StateSize())
	}
	// A right event in the next window must not match the evicted left.
	var out []Event
	j.OnEvent(1, ev(11*time.Second, "k", "new"), func(e Event) { out = append(out, e) })
	if len(out) != 0 {
		t.Fatalf("evicted state matched: %v", out)
	}
}

func TestWindowJoinSnapshotRestore(t *testing.T) {
	j := &WindowJoin{Size: 10 * time.Second}
	noEmit := func(Event) {}
	j.OnEvent(0, ev(1*time.Second, "k", "L"), noEmit)
	snap, err := j.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	j2 := &WindowJoin{Size: 10 * time.Second}
	if err := j2.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	var out []Event
	j2.OnEvent(1, ev(2*time.Second, "k", "R"), func(e Event) { out = append(out, e) })
	if len(out) != 1 {
		t.Fatalf("restored join did not match: %v", out)
	}
}

func TestWindowJoinBadPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("port 2 did not panic")
		}
	}()
	j := &WindowJoin{Size: time.Second}
	j.OnEvent(2, ev(0, "k", nil), func(Event) {})
}

func TestTopKFunction(t *testing.T) {
	counts := map[string]int64{"a": 5, "b": 9, "c": 5, "d": 1}
	got := TopK(counts, 3)
	want := []TopicCount{{"b", 9}, {"a", 5}, {"c", 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if got := TopK(counts, 10); len(got) != 4 {
		t.Fatalf("TopK with k>n = %v", got)
	}
}

func TestWindowTopK(t *testing.T) {
	tk := &WindowTopK{
		Size:    30 * time.Second,
		K:       2,
		TopicFn: func(e Event) string { return e.Value.(string) },
	}
	events := []Event{
		ev(1*time.Second, "us", "go"),
		ev(2*time.Second, "us", "go"),
		ev(3*time.Second, "us", "rust"),
		ev(4*time.Second, "us", "java"),
		ev(5*time.Second, "fr", "go"),
	}
	collect(tk, 0, events...)
	out := flush(tk, vclock.Time(30*time.Second))
	if len(out) != 2 {
		t.Fatalf("topk groups = %v, want fr and us", out)
	}
	// Groups sorted: fr first.
	if out[0].Key != "fr" {
		t.Fatalf("first group = %q, want fr", out[0].Key)
	}
	us := out[1].Value.([]TopicCount)
	want := []TopicCount{{"go", 2}, {"java", 1}}
	if !reflect.DeepEqual(us, want) {
		t.Fatalf("us topk = %v, want %v", us, want)
	}
	// Window max event time.
	if out[1].Time != vclock.Time(5*time.Second) {
		t.Fatalf("topk time = %v, want 5s", out[1].Time)
	}
	if tk.StateSize() != 0 {
		t.Fatalf("state remains: %d", tk.StateSize())
	}
}

func TestWindowTopKSnapshotRestore(t *testing.T) {
	mk := func() *WindowTopK {
		return &WindowTopK{Size: 30 * time.Second, K: 1, TopicFn: func(e Event) string { return e.Value.(string) }}
	}
	a := mk()
	collect(a, 0, ev(1*time.Second, "us", "go"), ev(2*time.Second, "us", "go"), ev(3*time.Second, "us", "c"))
	snap, err := a.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	outA := flush(a, MaxWatermark)
	outB := flush(b, MaxWatermark)
	if !reflect.DeepEqual(outA, outB) {
		t.Fatalf("restored topk %v != original %v", outB, outA)
	}
}

func TestWindowTopKDefaultTopicFn(t *testing.T) {
	tk := &WindowTopK{Size: time.Second, K: 1}
	collect(tk, 0, ev(0, "g", 42))
	out := flush(tk, MaxWatermark)
	if len(out) != 1 {
		t.Fatal("no output")
	}
	tc := out[0].Value.([]TopicCount)
	if tc[0].Topic != "42" {
		t.Fatalf("default topic = %q", tc[0].Topic)
	}
}
