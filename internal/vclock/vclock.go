// Package vclock provides a virtual (simulated) clock and a deterministic
// discrete-event scheduler. All WASP experiments run on virtual time so that
// 1500+ seconds of query execution replay in milliseconds, fully
// deterministically for a given seed.
package vclock

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is an instant on the virtual time line, expressed as the elapsed
// duration since the start of the simulation (virtual epoch 0).
type Time = time.Duration

// ErrStopped is returned by Run* methods when the scheduler was stopped
// explicitly via Stop.
var ErrStopped = errors.New("vclock: scheduler stopped")

// Clock is a virtual clock. The zero value is ready to use and reads 0.
// Clock is not safe for concurrent use; the simulation is single-threaded
// by design (determinism).
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. It panics if d is negative, since
// virtual time is monotone.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now += d
}

// advanceTo moves the clock to t, which must not be in the past.
func (c *Clock) advanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("vclock: advanceTo %v before now %v", t, c.now))
	}
	c.now = t
}

// Event is a scheduled callback on the virtual timeline.
type Event struct {
	at       Time
	seq      uint64 // tie-break so same-time events fire in schedule order
	fn       func(now Time)
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents a pending event from firing. Canceling an already-fired
// or already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Scheduler is a deterministic discrete-event scheduler driving a Clock.
// Events scheduled for the same instant fire in the order they were
// scheduled. The zero value is not usable; use NewScheduler.
type Scheduler struct {
	clock   *Clock
	queue   eventQueue
	nextSeq uint64
	stopped bool
}

// NewScheduler returns a Scheduler driving the given clock. If clock is
// nil, a fresh clock starting at 0 is used.
func NewScheduler(clock *Clock) *Scheduler {
	if clock == nil {
		clock = &Clock{}
	}
	return &Scheduler{clock: clock}
}

// Clock returns the clock driven by this scheduler.
func (s *Scheduler) Clock() *Clock { return s.clock }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.clock.Now() }

// At schedules fn to run at virtual time t. Scheduling in the past panics.
// The returned Event may be used to cancel.
func (s *Scheduler) At(t Time, fn func(now Time)) *Event {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("vclock: schedule at %v before now %v", t, s.clock.Now()))
	}
	ev := &Event{at: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func(now Time)) *Event {
	return s.At(s.clock.Now()+d, fn)
}

// Every schedules fn to run every interval, starting at now+interval, until
// the returned Event is canceled. fn observes the fire time.
func (s *Scheduler) Every(interval time.Duration, fn func(now Time)) *Event {
	if interval <= 0 {
		panic(fmt.Sprintf("vclock: non-positive interval %v", interval))
	}
	// The ticker is represented by a proxy event whose Cancel stops the
	// chain. One heap event is reused for every firing: re-arming from
	// inside the callback is safe because the event has already been
	// popped, and it takes the exact seq the per-firing After used to
	// take, so event ordering is unchanged. The proxy is never in the
	// heap, so a long-lived ticker costs two allocations total instead of
	// one per firing.
	proxy := &Event{}
	ev := &Event{index: -1}
	arm := func() {
		ev.at = s.clock.Now() + interval
		ev.seq = s.nextSeq
		s.nextSeq++
		ev.canceled = false
		heap.Push(&s.queue, ev)
		proxy.at = ev.at
	}
	ev.fn = func(now Time) {
		if proxy.canceled {
			return
		}
		fn(now)
		if proxy.canceled {
			return
		}
		arm()
	}
	arm()
	return proxy
}

// Stop makes the currently running Run/RunUntil return ErrStopped after the
// in-flight event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of events waiting to fire (including canceled
// ones not yet reaped).
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Step fires the next pending event, advancing the clock to its time. It
// returns false if no events are pending.
func (s *Scheduler) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.canceled {
			continue
		}
		s.clock.advanceTo(ev.at)
		ev.fn(s.clock.Now())
		return true
	}
	return false
}

// RunUntil fires events in order until the virtual clock would pass t, then
// advances the clock exactly to t. Events scheduled for t itself do fire.
// It returns ErrStopped if Stop was called.
func (s *Scheduler) RunUntil(t Time) error {
	s.stopped = false
	for s.queue.Len() > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > t {
			break
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if t > s.clock.Now() {
		s.clock.advanceTo(t)
	}
	return nil
}

// Run fires all pending events (including ones scheduled while running)
// until the queue drains. It returns ErrStopped if Stop was called.
func (s *Scheduler) Run() error {
	s.stopped = false
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
