package vclock

import (
	"errors"
	"testing"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Second)
	c.Advance(500 * time.Millisecond)
	if got, want := c.Now(), 3500*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler(nil)
	var order []int
	s.At(3*time.Second, func(Time) { order = append(order, 3) })
	s.At(1*time.Second, func(Time) { order = append(order, 1) })
	s.At(2*time.Second, func(Time) { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
	if got, want := s.Now(), 3*time.Second; got != want {
		t.Fatalf("final Now() = %v, want %v", got, want)
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler(nil)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func(Time) { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-instant order = %v, want ascending", order)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler(nil)
	s.Clock().Advance(5 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	s.At(time.Second, func(Time) {})
}

func TestEventCancel(t *testing.T) {
	s := NewScheduler(nil)
	fired := false
	ev := s.At(time.Second, func(Time) { fired = true })
	ev.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntilAdvancesExactly(t *testing.T) {
	s := NewScheduler(nil)
	var fires []Time
	s.At(time.Second, func(now Time) { fires = append(fires, now) })
	s.At(10*time.Second, func(now Time) { fires = append(fires, now) })
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fires) != 1 || fires[0] != time.Second {
		t.Fatalf("fires = %v, want [1s]", fires)
	}
	if got, want := s.Now(), 5*time.Second; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if err := s.RunUntil(10 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fires) != 2 || fires[1] != 10*time.Second {
		t.Fatalf("fires = %v, want event at boundary to fire", fires)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := NewScheduler(nil)
	fired := false
	s.At(2*time.Second, func(Time) { fired = true })
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !fired {
		t.Fatal("event at the RunUntil boundary did not fire")
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler(nil)
	var at Time
	s.At(time.Second, func(Time) {
		s.After(2*time.Second, func(now Time) { at = now })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := 3 * time.Second; at != want {
		t.Fatalf("nested After fired at %v, want %v", at, want)
	}
}

func TestEveryTicksAndCancels(t *testing.T) {
	s := NewScheduler(nil)
	var ticks []Time
	ev := s.Every(10*time.Second, func(now Time) { ticks = append(ticks, now) })
	if err := s.RunUntil(35 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, want := range []Time{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		if ticks[i] != want {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
	ev.Cancel()
	if err := s.RunUntil(100 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks after cancel = %d, want 3", len(ticks))
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	s := NewScheduler(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	s.Every(0, func(Time) {})
}

func TestStop(t *testing.T) {
	s := NewScheduler(nil)
	count := 0
	s.Every(time.Second, func(Time) {
		count++
		if count == 5 {
			s.Stop()
		}
	})
	err := s.RunUntil(time.Hour)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("RunUntil err = %v, want ErrStopped", err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := NewScheduler(nil)
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestPending(t *testing.T) {
	s := NewScheduler(nil)
	s.At(time.Second, func(Time) {})
	s.At(2*time.Second, func(Time) {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
}
