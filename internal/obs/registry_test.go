package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("empty histogram Quantile(%v) = %v, want NaN", q, v)
		}
	}
	var nilH *Histogram
	if v := nilH.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("nil histogram Quantile = %v, want NaN", v)
	}
}

// Observations landing exactly on a bucket bound must count into that
// bucket (bounds are inclusive upper edges), and the quantile of a
// single-bound bucket interpolates within it.
func TestHistogramExactBoundObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	h.Observe(1) // exactly on the first bound → first bucket
	h.Observe(2) // exactly on the second bound → second bucket
	if got := h.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := h.Sum(); got != 3 {
		t.Fatalf("Sum = %v, want 3", got)
	}
	// q=0.5 → rank 1 lands in the first bucket [0,1]; uniform-spread
	// interpolation puts it at the bucket's upper edge.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("Quantile(0.5) = %v, want 1", got)
	}
	// q=1 → rank 2 lands in (1,2].
	if got := h.Quantile(1); got != 2 {
		t.Errorf("Quantile(1) = %v, want 2", got)
	}
}

// Observations above the last bound land in the implicit +Inf bucket; the
// quantile there clamps to the highest finite bound.
func TestHistogramInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want clamp to last bound 2", got)
	}
	if got := h.Quantile(0.99); got != 2 {
		t.Errorf("Quantile(0.99) = %v, want clamp to last bound 2", got)
	}
	if got := h.Sum(); got != 300 {
		t.Errorf("Sum = %v, want 300", got)
	}
}

// A histogram created with no bounds puts everything in +Inf; Quantile
// falls back to the mean rather than inventing a bound.
func TestHistogramNoBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", nil)
	h.Observe(2)
	h.Observe(4)
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("Quantile on boundless histogram = %v, want mean 3", got)
	}
}

func TestHistogramQuantileInterpolates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(15) // all in (10,20]
	}
	// rank q*10 interpolates linearly across (10,20].
	if got := h.Quantile(0.5); got != 15 {
		t.Errorf("Quantile(0.5) = %v, want 15", got)
	}
	if got := h.Quantile(0.9); math.Abs(got-19) > 1e-9 {
		t.Errorf("Quantile(0.9) = %v, want 19", got)
	}
}

// Label sets must select distinct series: same metric name, different
// labels, independent counts.
func TestHistogramLabelSeriesSeparation(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("wasp_adapt_latency_seconds", []float64{1, 10}, "phase", "halt")
	b := r.Histogram("wasp_adapt_latency_seconds", []float64{1, 10}, "phase", "transfer")
	a.Observe(0.5)
	a.Observe(0.5)
	b.Observe(9)
	if a == b {
		t.Fatal("distinct label sets returned the same histogram")
	}
	if a.Count() != 2 || b.Count() != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", a.Count(), b.Count())
	}
	// Re-fetching with the same labels (nil bounds: first creation wins)
	// returns the same series.
	if again := r.Histogram("wasp_adapt_latency_seconds", nil, "phase", "halt"); again != a {
		t.Fatal("re-fetch with same labels returned a different histogram")
	}
	if got := a.Quantile(0.5); got != 0.5 {
		t.Errorf("series a Quantile(0.5) = %v, want 0.5", got)
	}
	// b's one observation sits in (1,10]; rank 0.5 interpolates to the
	// bucket midpoint.
	if got := b.Quantile(0.5); got != 5.5 {
		t.Errorf("series b Quantile(0.5) = %v, want 5.5", got)
	}
}
