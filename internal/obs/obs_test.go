package obs

import (
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func testClock(t *vclock.Time) func() vclock.Time {
	return func() vclock.Time { return *t }
}

func TestNilObserverIsNoOp(t *testing.T) {
	var o *Observer
	o.Emit("event", F64("x", 1))
	sp := o.StartSpan("span")
	sp.Event("e")
	sp.Reject("re-assign", "because")
	sp.SetAttrs(Int("p", 3))
	sp.Finish()
	async := o.StartAsync("migration")
	async.Finish()
	o.Registry().Counter("c").Inc()
	o.Registry().Gauge("g").Set(5)
	o.Registry().Histogram("h", []float64{1, 2}).Observe(1.5)
	if o.Timeline() != nil || o.Events("action") != nil {
		t.Fatal("nil observer retained data")
	}
	var b strings.Builder
	if err := o.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteJSONL = %q, %v", b.String(), err)
	}
	if err := o.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteProm = %q, %v", b.String(), err)
	}
	if err := o.WriteAudit(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteAudit = %q, %v", b.String(), err)
	}
}

func TestSpanNestingAndParents(t *testing.T) {
	now := vclock.Time(0)
	o := New(testClock(&now))

	now = 40 * time.Second
	round := o.StartSpan("controller.round", String("policy", "wasp"))
	o.Emit("diagnose", Int("op", 3)) // attaches to active round span
	decision := o.StartSpan("decision", Int("op", 3))
	decision.Reject("re-assign", "no placement found")
	mig := o.StartAsync("engine.reconfigure", Int("op", 3))
	o.Emit("action", String("kind", "scale-out"), I64("op", 3), String("detail", "p 1→2"))
	decision.Finish()
	round.Finish()

	now = 52 * time.Second
	o.Emit("top-level") // no active span anymore
	mig.Finish()

	if round.Parent != 0 {
		t.Fatalf("round parent = %d, want 0", round.Parent)
	}
	if decision.Parent != round.ID {
		t.Fatalf("decision parent = %d, want %d", decision.Parent, round.ID)
	}
	if mig.Parent != decision.ID {
		t.Fatalf("migration parent = %d, want %d", mig.Parent, decision.ID)
	}
	if !mig.Ended || mig.End != 52*time.Second {
		t.Fatalf("migration end = %v ended=%v", mig.End, mig.Ended)
	}
	if len(round.Events) != 1 || round.Events[0].Name != "diagnose" {
		t.Fatalf("round events = %+v", round.Events)
	}
	// The action emitted while decision was active lands on the decision.
	if len(decision.Events) != 2 || decision.Events[1].Name != "action" {
		t.Fatalf("decision events = %+v", decision.Events)
	}
	acts := o.Events("action")
	if len(acts) != 1 || acts[0].Get("kind").Str() != "scale-out" || acts[0].Get("op").Int64() != 3 {
		t.Fatalf("action events = %+v", acts)
	}
	// Top-level event after round.Finish is not nested anywhere.
	found := false
	for _, e := range o.Timeline() {
		if e.ev != nil && e.ev.Name == "top-level" {
			found = true
		}
	}
	if !found {
		t.Fatal("top-level event missing from timeline")
	}
}

func TestWriteJSONLDeterministicAndWellFormed(t *testing.T) {
	build := func() string {
		now := vclock.Time(0)
		o := New(testClock(&now))
		now = 10 * time.Second
		sp := o.StartSpan("controller.round", String("policy", "wasp"), F64("rate-factor", 1.5))
		sp.Reject("re-plan", `overhead "big" > t_max`, Dur("overhead", 45*time.Second))
		o.Emit("action", String("kind", "scale-up"), I64("op", 2), String("detail", "p 1→2"))
		sp.Finish()
		now = 20 * time.Second
		o.Emit("engine.fail", Dur("outage", time.Minute), Bool("full", true))
		open := o.StartAsync("engine.replan")
		_ = open // left unfinished on purpose
		var b strings.Builder
		if err := o.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), a)
	}
	if !strings.Contains(lines[0], `"type":"span"`) || !strings.Contains(lines[0], `"end":10`) {
		t.Errorf("span line = %s", lines[0])
	}
	if !strings.Contains(lines[0], `\"big\"`) {
		t.Errorf("string escaping missing: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"type":"event"`) || !strings.Contains(lines[1], `"outage":60`) {
		t.Errorf("event line = %s", lines[1])
	}
	if !strings.Contains(lines[2], `"end":null`) {
		t.Errorf("open span line = %s", lines[2])
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wasp_events_total", "op", "3")
	c.Add(5)
	c.Inc()
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 6 {
		t.Fatalf("counter = %v", c.Value())
	}
	if r.Counter("wasp_events_total", "op", "3") != c {
		t.Fatal("same series did not dedupe")
	}
	if r.Counter("wasp_events_total", "op", "4") == c {
		t.Fatal("distinct labels collided")
	}

	g := r.Gauge("wasp_queue_events")
	g.Set(42)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("wasp_migration_seconds", []float64{1, 5, 30})
	for _, v := range []float64{0.5, 1, 4, 31, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 136.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	want := []uint64{2, 1, 0, 2} // ≤1: 0.5 and 1 (inclusive edge); ≤5: 4; ≤30: none; +Inf: 31, 100
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, h.counts[i], w, h.counts)
		}
	}
}

func TestWritePromFormat(t *testing.T) {
	now := vclock.Time(0)
	o := New(testClock(&now))
	r := o.Registry()
	r.Describe("wasp_events_processed_total", "Events processed per operator.")
	r.Counter("wasp_events_processed_total", "op", "1").Add(100)
	r.Counter("wasp_events_processed_total", "op", "2").Add(50)
	r.Gauge("wasp_operator_tasks", "op", "1").Set(3)
	h := r.Histogram("wasp_migration_seconds", []float64{1, 30})
	h.Observe(12)

	var b strings.Builder
	if err := o.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP wasp_events_processed_total Events processed per operator.\n",
		"# TYPE wasp_events_processed_total counter\n",
		`wasp_events_processed_total{op="1"} 100`,
		`wasp_events_processed_total{op="2"} 50`,
		"# TYPE wasp_operator_tasks gauge\n",
		"# TYPE wasp_migration_seconds histogram\n",
		`wasp_migration_seconds_bucket{le="1"} 0`,
		`wasp_migration_seconds_bucket{le="30"} 1`,
		`wasp_migration_seconds_bucket{le="+Inf"} 1`,
		"wasp_migration_seconds_sum 12",
		"wasp_migration_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Series of one metric must be sorted and contiguous under one TYPE.
	if strings.Index(out, `op="1"`) > strings.Index(out, `op="2"`) {
		t.Errorf("series not sorted:\n%s", out)
	}
}

func TestWriteAuditAndActionLog(t *testing.T) {
	now := vclock.Time(0)
	o := New(testClock(&now))
	now = 240 * time.Second
	round := o.StartSpan("controller.round", String("policy", "wasp"))
	o.Emit("diagnose", Int("op", 3), String("cond", "network-constrained"), F64("lambda_in_hat", 45000))
	d := o.StartSpan("decision", Int("op", 3))
	d.Reject("re-assign", "overhead 45s > t_max 30s")
	mig := o.StartAsync("engine.reconfigure", Int("op", 3), F64("bytes", 1e7))
	o.Emit("action", String("kind", "scale-out"), I64("op", 3), String("detail", "p 1→2 at [2 4]"))
	d.Finish()
	round.Finish()
	now = 252 * time.Second
	mig.Finish()

	var b strings.Builder
	if err := o.WriteAudit(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"controller.round policy=wasp",
		"· diagnose op=3 cond=network-constrained lambda_in_hat=45000",
		"✗ re-assign — overhead 45s > t_max 30s",
		"✓ scale-out op=3: p 1→2 at [2 4]",
		"engine.reconfigure op=3 bytes=1e+07 (+12s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("audit missing %q:\n%s", want, out)
		}
	}

	var log strings.Builder
	n, err := o.WriteActionLog(&log)
	if err != nil || n != 1 {
		t.Fatalf("WriteActionLog = %d, %v", n, err)
	}
	if !strings.Contains(log.String(), "t=  240s scale-out  op=3   p 1→2 at [2 4]") {
		t.Errorf("action log = %q", log.String())
	}
}

func TestValText(t *testing.T) {
	tests := []struct {
		kv   KV
		want string
	}{
		{String("k", "v"), "v"},
		{F64("k", 1.25), "1.25"},
		{Int("k", -3), "-3"},
		{Bool("k", true), "true"},
		{Dur("k", 90*time.Second), "1m30s"},
	}
	for _, tt := range tests {
		if got := tt.kv.Val.Text(); got != tt.want {
			t.Errorf("Text(%+v) = %q, want %q", tt.kv, got, tt.want)
		}
	}
	if !(KV{}).Val.IsZero() {
		t.Error("zero Val not IsZero")
	}
}
