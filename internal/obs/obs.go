// Package obs is WASP's dependency-free observability layer: a telemetry
// registry (counters, gauges, fixed-bucket histograms), span-based
// decision tracing for the §6.2 adaptation policy, and exporters — a
// JSONL event/span timeline, a Prometheus text-exposition dump, and a
// human-readable decision audit.
//
// Everything is timestamped with vclock.Time, so instrumented runs stay
// deterministic: two runs with the same seed produce byte-identical JSONL
// timelines. The only optional wall-clock input is SetWallClock, which
// feeds real controller-round latencies into the registry (and only the
// registry) when a caller opts in.
//
// Every entry point is nil-safe: a nil *Observer — and the nil metric
// handles and spans it hands out — turns every call into a no-op, so
// instrumented hot paths cost one pointer check when observability is
// disabled, and no allocation happens.
package obs

import (
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// Observer is the root of one run's observability state: it owns the
// telemetry registry and the trace timeline (events and spans in emission
// order). Observer is not safe for concurrent use; the simulation is
// single-threaded by design.
type Observer struct {
	now  func() vclock.Time
	wall func() time.Duration

	reg      *Registry
	nextID   uint64
	cur      *Span // innermost active span, if any
	timeline []entry
}

// entry is one timeline slot: either a top-level event or a span (listed
// at its start position; its contents fill in as the run progresses).
type entry struct {
	ev   *Event
	span *Span
}

// New creates an Observer reading virtual time from now. A nil clock is
// allowed (timestamps read 0) and can be bound later with Bind — the
// experiment runner binds the observer to its scheduler on startup.
func New(now func() vclock.Time) *Observer {
	o := &Observer{now: now, reg: NewRegistry()}
	return o
}

// Bind installs the virtual clock the observer timestamps with. Callers
// that construct the Observer before the scheduler exists (e.g. waspd)
// bind it once the run is wired up.
func (o *Observer) Bind(now func() vclock.Time) {
	if o == nil || now == nil {
		return
	}
	o.now = now
}

// SetWallClock installs an optional real-time clock used to measure
// controller-round latency into the registry. Leaving it unset keeps
// every export fully deterministic.
func (o *Observer) SetWallClock(wall func() time.Duration) {
	if o == nil {
		return
	}
	o.wall = wall
}

// Wall returns the wall clock (nil unless SetWallClock was called).
func (o *Observer) Wall() func() time.Duration {
	if o == nil {
		return nil
	}
	return o.wall
}

// Now returns the observer's current virtual timestamp.
func (o *Observer) Now() vclock.Time {
	if o == nil || o.now == nil {
		return 0
	}
	return o.now()
}

// Registry returns the telemetry registry (nil for a nil Observer; the
// nil Registry hands out nil metric handles whose methods no-op).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Emit records a point-in-time event. If a span is active (its StartSpan
// has not ended), the event attaches to it; otherwise it lands at the top
// level of the timeline.
func (o *Observer) Emit(name string, attrs ...KV) {
	if o == nil {
		return
	}
	ev := Event{At: o.Now(), Name: name, Attrs: attrs}
	if o.cur != nil {
		o.cur.Events = append(o.cur.Events, ev)
		return
	}
	e := ev
	o.timeline = append(o.timeline, entry{ev: &e})
}

// StartSpan opens a span and makes it the active one: subsequent Emit and
// StartSpan calls nest under it until End. The span's parent is whatever
// span was active at the call.
func (o *Observer) StartSpan(name string, attrs ...KV) *Span {
	sp := o.newSpan(name, attrs)
	if sp != nil {
		o.cur = sp
	}
	return sp
}

// StartAsync opens a span parented to the active span without activating
// it — for operations that outlive the current decision, such as state
// migrations and plan switches that complete many ticks later.
func (o *Observer) StartAsync(name string, attrs ...KV) *Span {
	return o.newSpan(name, attrs)
}

func (o *Observer) newSpan(name string, attrs []KV) *Span {
	if o == nil {
		return nil
	}
	o.nextID++
	sp := &Span{
		o:      o,
		ID:     o.nextID,
		Name:   name,
		Start:  o.Now(),
		Attrs:  attrs,
		parent: o.cur,
	}
	if o.cur != nil {
		sp.Parent = o.cur.ID
	}
	o.timeline = append(o.timeline, entry{span: sp})
	return sp
}

// Timeline returns the recorded entries in emission order. Exporters (and
// tests) walk this; callers must not mutate it.
func (o *Observer) Timeline() []entry {
	if o == nil {
		return nil
	}
	return o.timeline
}

// Events returns the top-level and in-span events with the given name, in
// timeline order — e.g. Events("action") is the adaptation log.
func (o *Observer) Events(name string) []Event {
	if o == nil {
		return nil
	}
	var out []Event
	for _, e := range o.timeline {
		if e.ev != nil && e.ev.Name == name {
			out = append(out, *e.ev)
		}
		if e.span != nil {
			for _, ev := range e.span.Events {
				if ev.Name == name {
					out = append(out, ev)
				}
			}
		}
	}
	return out
}

// Event is one point-in-time record.
type Event struct {
	At    vclock.Time
	Name  string
	Attrs []KV
}

// Get returns the value of the named attribute (zero Val if absent).
func (e Event) Get(key string) Val {
	for _, kv := range e.Attrs {
		if kv.Key == key {
			return kv.Val
		}
	}
	return Val{}
}

// Span is one timed operation on the virtual timeline: a controller
// round, a per-operator decision, a state migration, a plan switch. Spans
// carry attributes and nested events (diagnosis evidence, rejected
// branches, performed actions) and may have child spans.
type Span struct {
	o      *Observer
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Start  vclock.Time
	End    vclock.Time // valid once Ended
	Ended  bool
	Attrs  []KV
	Events []Event

	parent *Span
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...KV) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Event records a point event inside the span (regardless of whether the
// span is the active one).
func (s *Span) Event(name string, attrs ...KV) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{At: s.o.Now(), Name: name, Attrs: attrs})
}

// Reject records a considered-but-rejected Figure-6 branch and why — the
// half of the decision trace a plain action log cannot show.
func (s *Span) Reject(branch, reason string, attrs ...KV) {
	if s == nil {
		return
	}
	kvs := make([]KV, 0, len(attrs)+2)
	kvs = append(kvs, String("branch", branch), String("reason", reason))
	kvs = append(kvs, attrs...)
	s.Events = append(s.Events, Event{At: s.o.Now(), Name: "reject", Attrs: kvs})
}

// Finish closes the span at the current virtual time. If the span is the
// active one, its parent becomes active again. Finishing twice (or a nil
// span) is a no-op.
func (s *Span) Finish() {
	if s == nil || s.Ended {
		return
	}
	s.End = s.o.Now()
	s.Ended = true
	if s.o.cur == s {
		s.o.cur = s.parent
	}
}

// Get returns the value of the named span attribute (zero Val if absent).
func (s *Span) Get(key string) Val {
	if s == nil {
		return Val{}
	}
	for _, kv := range s.Attrs {
		if kv.Key == key {
			return kv.Val
		}
	}
	return Val{}
}
