package obs

import (
	"io"
	"strconv"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// FlightRecorder is the run's black box: a fixed-capacity, struct-of-arrays
// ring buffer of per-tick samples. The engine begins one row per simulation
// tick and writes named columns (per-stage backlog and processing rate,
// per-link utilization, suspended-operator count, in-flight transfers)
// into the current row. Every buffer is preallocated at creation, so the
// warm tick path — BeginTick plus any number of Column Set/Add calls —
// performs zero allocations; column creation is the only allocating
// operation and happens off the tick path (at attach time and after
// structural plan changes).
//
// When the buffer wraps, the oldest rows are overwritten: a dump always
// holds the last Len() ticks before the dump — exactly what a post-mortem
// of a failed run needs. All methods are nil-safe, mirroring the rest of
// the obs package: a nil *FlightRecorder (recording disabled) turns every
// call into a no-op.
type FlightRecorder struct {
	capacity int
	rows     int // rows recorded since creation (monotone)
	pos      int // ring slot of the current row
	t        []vclock.Time

	cols   []*FlightColumn // creation order == dump column order
	byName map[string]*FlightColumn
}

// FlightColumn is one named series of the flight recorder. The zero slot
// of every row is 0; Set overwrites and Add accumulates within the
// current row.
type FlightColumn struct {
	name string
	buf  []float64
	fr   *FlightRecorder
}

// DefaultFlightCapacity is the ring size used when NewFlightRecorder is
// given a non-positive capacity: at the engine's 250 ms tick it retains
// the last ~17 virtual minutes of a run.
const DefaultFlightCapacity = 4096

// NewFlightRecorder creates a recorder retaining the last `capacity`
// ticks (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{
		capacity: capacity,
		pos:      -1,
		t:        make([]vclock.Time, capacity),
		byName:   make(map[string]*FlightColumn),
	}
}

// Column returns (creating if needed) the named column. Creation
// allocates the column's full ring buffer up front — call it when the
// recorder is attached or after a structural change, never per tick.
func (f *FlightRecorder) Column(name string) *FlightColumn {
	if f == nil {
		return nil
	}
	if c, ok := f.byName[name]; ok {
		return c
	}
	c := &FlightColumn{name: name, buf: make([]float64, f.capacity), fr: f}
	f.byName[name] = c
	f.cols = append(f.cols, c)
	return c
}

// BeginTick starts the row for one simulation tick at virtual time t,
// zero-filling every column's slot. Allocation-free.
func (f *FlightRecorder) BeginTick(t vclock.Time) {
	if f == nil {
		return
	}
	f.pos++
	if f.pos == f.capacity {
		f.pos = 0
	}
	f.rows++
	f.t[f.pos] = t
	for _, c := range f.cols {
		c.buf[f.pos] = 0
	}
}

// Set writes the column's value for the current row. Allocation-free.
func (c *FlightColumn) Set(v float64) {
	if c == nil || c.fr.pos < 0 {
		return
	}
	c.buf[c.fr.pos] = v
}

// Add accumulates into the column's value for the current row (rows start
// at 0) — for columns folding several contributors, e.g. the flows sharing
// one WAN link. Allocation-free.
func (c *FlightColumn) Add(v float64) {
	if c == nil || c.fr.pos < 0 {
		return
	}
	c.buf[c.fr.pos] += v
}

// Name returns the column's name.
func (c *FlightColumn) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Len returns the number of retained rows (at most the capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	if f.rows < f.capacity {
		return f.rows
	}
	return f.capacity
}

// Rows returns the total rows recorded since creation, including
// overwritten ones.
func (f *FlightRecorder) Rows() int {
	if f == nil {
		return 0
	}
	return f.rows
}

// FlightSchema identifies the dump format in its header line.
const FlightSchema = "wasp-flight/v1"

// Dump writes the retained rows, oldest first, as JSON lines: a header
//
//	{"flight":"wasp-flight/v1","capacity":4096,"rows":900,"columns":[...]}
//
// followed by one row per retained tick:
//
//	{"t":12.5,"v":[...]}
//
// where v holds the column values in header order. Floats use the same
// shortest round-trip encoding as the JSONL timeline, so same-seed dumps
// are byte-identical.
func (f *FlightRecorder) Dump(w io.Writer) error {
	if f == nil {
		return nil
	}
	buf := make([]byte, 0, 512)
	buf = append(buf, `{"flight":`...)
	buf = appendJSONString(buf, FlightSchema)
	buf = append(buf, `,"capacity":`...)
	buf = strconv.AppendInt(buf, int64(f.capacity), 10)
	buf = append(buf, `,"rows":`...)
	buf = strconv.AppendInt(buf, int64(f.rows), 10)
	buf = append(buf, `,"columns":[`...)
	for i, c := range f.cols {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, c.name)
	}
	buf = append(buf, ']', '}', '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}

	n := f.Len()
	start := 0
	if f.rows > f.capacity {
		start = f.pos + 1 // oldest retained row
	}
	for i := 0; i < n; i++ {
		slot := start + i
		if slot >= f.capacity {
			slot -= f.capacity
		}
		buf = buf[:0]
		buf = append(buf, `{"t":`...)
		buf = appendTime(buf, f.t[slot])
		buf = append(buf, `,"v":[`...)
		for j, c := range f.cols {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = appendJSONFloat(buf, c.buf[slot])
		}
		buf = append(buf, ']', '}', '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
