package obs

import (
	"strconv"
	"time"
	"unicode/utf8"
)

// KV is one attribute on an event or span.
type KV struct {
	Key string
	Val Val
}

type valKind uint8

const (
	kindNone valKind = iota
	kindString
	kindFloat
	kindInt
	kindBool
	kindDur
)

// Val is an attribute value: string, float64, int64, bool, or duration.
// The concrete representation avoids interface boxing so building
// attributes does not allocate per value.
type Val struct {
	kind valKind
	str  string
	num  float64
	i    int64
	b    bool
}

// String makes a string attribute.
func String(k, v string) KV { return KV{Key: k, Val: Val{kind: kindString, str: v}} }

// F64 makes a float attribute.
//
//waspvet:hotpath
func F64(k string, v float64) KV { return KV{Key: k, Val: Val{kind: kindFloat, num: v}} }

// Int makes an integer attribute.
//
//waspvet:hotpath
func Int(k string, v int) KV { return KV{Key: k, Val: Val{kind: kindInt, i: int64(v)}} }

// I64 makes an int64 attribute.
func I64(k string, v int64) KV { return KV{Key: k, Val: Val{kind: kindInt, i: v}} }

// Bool makes a boolean attribute.
func Bool(k string, v bool) KV { return KV{Key: k, Val: Val{kind: kindBool, b: v}} }

// Dur makes a duration attribute. It is exported to JSON as seconds and
// rendered human-readably ("12.5s") in the audit.
func Dur(k string, v time.Duration) KV { return KV{Key: k, Val: Val{kind: kindDur, i: int64(v)}} }

// IsZero reports whether the value is unset.
func (v Val) IsZero() bool { return v.kind == kindNone }

// Str returns the string value ("" for other kinds).
func (v Val) Str() string { return v.str }

// Float returns the numeric value as a float64 (0 for non-numeric kinds).
func (v Val) Float() float64 {
	switch v.kind {
	case kindFloat:
		return v.num
	case kindInt:
		return float64(v.i)
	case kindDur:
		return time.Duration(v.i).Seconds()
	default:
		return 0
	}
}

// Int64 returns the integer value (0 for other kinds).
func (v Val) Int64() int64 { return v.i }

// Duration returns the duration value (0 for other kinds).
func (v Val) Duration() time.Duration {
	if v.kind != kindDur {
		return 0
	}
	return time.Duration(v.i)
}

// Text renders the value for the human-readable audit.
func (v Val) Text() string {
	switch v.kind {
	case kindString:
		return v.str
	case kindFloat:
		return formatFloat(v.num)
	case kindInt:
		return strconv.FormatInt(v.i, 10)
	case kindBool:
		return strconv.FormatBool(v.b)
	case kindDur:
		return time.Duration(v.i).String()
	default:
		return ""
	}
}

// appendJSON appends the value's JSON encoding.
func (v Val) appendJSON(b []byte) []byte {
	switch v.kind {
	case kindString:
		return appendJSONString(b, v.str)
	case kindFloat:
		return appendJSONFloat(b, v.num)
	case kindInt:
		return strconv.AppendInt(b, v.i, 10)
	case kindBool:
		return strconv.AppendBool(b, v.b)
	case kindDur:
		return appendJSONFloat(b, time.Duration(v.i).Seconds())
	default:
		return append(b, "null"...)
	}
}

// formatFloat renders a float the way every exporter does: shortest
// round-trippable decimal form, so output is stable across runs.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// appendJSONFloat appends a JSON-safe float (NaN and ±Inf are not valid
// JSON numbers; they encode as strings).
func appendJSONFloat(b []byte, f float64) []byte {
	if f != f || f > maxJSONFloat || f < -maxJSONFloat {
		return appendJSONString(b, formatFloat(f))
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

const maxJSONFloat = 1.7976931348623157e308

// appendJSONString appends a JSON string literal with the minimal escape
// set (quotes, backslash, control characters).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch r {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			if r < 0x20 {
				const hex = "0123456789abcdef"
				b = append(b, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xf])
			} else {
				b = utf8.AppendRune(b, r)
			}
		}
	}
	return append(b, '"')
}
