package obs

import (
	"io"
	"strconv"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// WriteJSONL writes the trace timeline as one JSON object per line, in
// emission order. Events encode as
//
//	{"t":12.5,"type":"event","name":"...","attrs":{...}}
//
// and spans (listed at their start position, with their nested events
// inline) as
//
//	{"t":40,"type":"span","id":3,"parent":1,"name":"...","end":40.2,
//	 "attrs":{...},"events":[{"t":40,"name":"...","attrs":{...}},...]}
//
// A span still open at export time has "end":null. Attribute order is the
// emission order, timestamps are virtual seconds, and floats use the
// shortest round-trip form — so the same seed yields byte-identical
// output.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	buf := make([]byte, 0, 512)
	for _, e := range o.timeline {
		buf = buf[:0]
		switch {
		case e.ev != nil:
			buf = appendEventJSON(buf, *e.ev, true)
		case e.span != nil:
			buf = appendSpanJSON(buf, e.span)
		default:
			continue
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func appendTime(b []byte, t vclock.Time) []byte {
	return appendJSONFloat(b, t.Seconds())
}

func appendAttrsJSON(b []byte, attrs []KV) []byte {
	b = append(b, '{')
	for i, kv := range attrs {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, kv.Key)
		b = append(b, ':')
		b = kv.Val.appendJSON(b)
	}
	return append(b, '}')
}

func appendEventJSON(b []byte, ev Event, topLevel bool) []byte {
	b = append(b, `{"t":`...)
	b = appendTime(b, ev.At)
	if topLevel {
		b = append(b, `,"type":"event"`...)
	}
	b = append(b, `,"name":`...)
	b = appendJSONString(b, ev.Name)
	b = append(b, `,"attrs":`...)
	b = appendAttrsJSON(b, ev.Attrs)
	return append(b, '}')
}

func appendSpanJSON(b []byte, sp *Span) []byte {
	b = append(b, `{"t":`...)
	b = appendTime(b, sp.Start)
	b = append(b, `,"type":"span","id":`...)
	b = strconv.AppendUint(b, sp.ID, 10)
	b = append(b, `,"parent":`...)
	b = strconv.AppendUint(b, sp.Parent, 10)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, sp.Name)
	b = append(b, `,"end":`...)
	if sp.Ended {
		b = appendTime(b, sp.End)
	} else {
		b = append(b, "null"...)
	}
	b = append(b, `,"attrs":`...)
	b = appendAttrsJSON(b, sp.Attrs)
	b = append(b, `,"events":[`...)
	for i, ev := range sp.Events {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendEventJSON(b, ev, false)
	}
	return append(b, ']', '}')
}
