package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.BeginTick(0)
	f.Column("x").Set(1)
	f.Column("x").Add(1)
	if f.Len() != 0 || f.Rows() != 0 {
		t.Fatal("nil recorder must report zero rows")
	}
	if err := f.Dump(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestFlightRecorderRecordsAndDumps(t *testing.T) {
	f := NewFlightRecorder(8)
	a := f.Column("a")
	b := f.Column("b")
	for i := 0; i < 3; i++ {
		f.BeginTick(vclock.Time(i) * vclock.Time(time.Second))
		a.Set(float64(i))
		b.Add(1)
		b.Add(0.5)
	}
	if f.Len() != 3 || f.Rows() != 3 {
		t.Fatalf("Len=%d Rows=%d, want 3/3", f.Len(), f.Rows())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	wantHeader := `{"flight":"wasp-flight/v1","capacity":8,"rows":3,"columns":["a","b"]}`
	if lines[0] != wantHeader {
		t.Fatalf("header = %s\nwant     %s", lines[0], wantHeader)
	}
	if lines[2] != `{"t":1,"v":[1,1.5]}` {
		t.Fatalf("row 1 = %s", lines[2])
	}
}

func TestFlightRecorderWrapKeepsNewestRows(t *testing.T) {
	f := NewFlightRecorder(4)
	c := f.Column("v")
	for i := 0; i < 10; i++ {
		f.BeginTick(vclock.Time(i) * vclock.Time(time.Second))
		c.Set(float64(i))
	}
	if f.Len() != 4 || f.Rows() != 10 {
		t.Fatalf("Len=%d Rows=%d, want 4/10", f.Len(), f.Rows())
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// Oldest retained row first: ticks 6, 7, 8, 9.
	want := []string{
		`{"t":6,"v":[6]}`,
		`{"t":7,"v":[7]}`,
		`{"t":8,"v":[8]}`,
		`{"t":9,"v":[9]}`,
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Fatalf("row %d = %s, want %s", i, lines[i+1], w)
		}
	}
}

// TestFlightRecorderZeroFillsNewRow guards the semantics Set/Add rely on:
// every BeginTick starts all columns at zero, even after a wrap over old
// values.
func TestFlightRecorderZeroFillsNewRow(t *testing.T) {
	f := NewFlightRecorder(2)
	c := f.Column("v")
	f.BeginTick(0)
	c.Set(7)
	f.BeginTick(1)
	c.Set(8)
	f.BeginTick(2) // wraps onto the slot holding 7; must read 0 if unset
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{"t":2e-09,"v":[0]}`) {
		t.Fatalf("wrapped row not zero-filled:\n%s", buf.String())
	}
}

// TestFlightRecorderTickAllocs locks in the 0 allocs/tick contract of the
// warm path: BeginTick plus column writes must never allocate once the
// columns exist.
func TestFlightRecorderTickAllocs(t *testing.T) {
	f := NewFlightRecorder(64)
	cols := make([]*FlightColumn, 16)
	for i := range cols {
		cols[i] = f.Column(strings.Repeat("c", i+1))
	}
	now := vclock.Time(0)
	avg := testing.AllocsPerRun(500, func() {
		now += vclock.Time(250 * time.Millisecond)
		f.BeginTick(now)
		for _, c := range cols {
			c.Set(1.5)
			c.Add(0.25)
		}
	})
	if avg != 0 {
		t.Errorf("flight warm path allocates %.2f objects/tick, want 0", avg)
	}
}

func TestFlightRecorderLateColumnReadsZeroForOldRows(t *testing.T) {
	f := NewFlightRecorder(8)
	a := f.Column("a")
	f.BeginTick(0)
	a.Set(1)
	late := f.Column("late") // created after a row was recorded
	f.BeginTick(1)
	late.Set(2)
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[1] != `{"t":0,"v":[1,0]}` {
		t.Fatalf("pre-creation row = %s, want late column zero", lines[1])
	}
}
