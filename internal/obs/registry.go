package obs

import (
	"math"
	"sort"
	"strings"
)

// Registry holds a run's telemetry instruments, keyed by metric name plus
// label set. Instruments are created on first use and survive for the
// run; export order is deterministic (sorted by name, then labels).
//
// All methods are nil-safe: a nil *Registry returns nil instruments, and
// nil instruments' Add/Set/Observe are no-ops, so call sites need no
// guards when observability is disabled.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// Describe attaches a HELP string to a metric name for the Prometheus
// export. Later descriptions of the same name win.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.help[name] = help
}

// seriesKey builds the identity of one series: name plus label pairs in
// the given (caller-stable) order.
func seriesKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotone accumulator. The zero value of the pointer (nil)
// is a valid no-op instrument.
type Counter struct {
	name   string
	series string
	v      float64
}

// Counter returns (creating if needed) the counter for name with the
// given label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, series: key}
		r.counters[key] = c
	}
	return c
}

// Add increases the counter. Negative deltas are ignored (counters are
// monotone).
//
//waspvet:hotpath
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	c.v += v
}

// Inc adds 1.
//
//waspvet:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value returns the accumulated total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a set-to-current-value instrument.
type Gauge struct {
	name   string
	series string
	v      float64
}

// Gauge returns (creating if needed) the gauge for name with the given
// label key/value pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, series: key}
		r.gauges[key] = g
	}
	return g
}

// Set records the current value.
//
//waspvet:hotpath
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket cumulative histogram: bounds are the
// inclusive upper edges, ascending; observations above the last bound
// land in the implicit +Inf bucket.
type Histogram struct {
	name   string
	series string
	bounds []float64
	counts []uint64 // len(bounds)+1, last = +Inf bucket
	sum    float64
	count  uint64
}

// Histogram returns (creating if needed) the histogram for name with the
// given bucket bounds and label key/value pairs. The bounds of the first
// creation win; later calls may pass nil.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := seriesKey(name, labels)
	h, ok := r.hists[key]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{name: name, series: key, bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[key] = h
	}
	return h
}

// Observe records one sample.
//
//waspvet:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose (inclusive) upper bound covers the sample; the
	// +Inf bucket is counts[len(bounds)].
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// Prometheus-style: the target rank is located in its bucket and linearly
// interpolated between the bucket's bounds, assuming uniform spread. The
// first bucket interpolates from 0; a rank landing in the +Inf bucket
// reports the highest finite bound (the histogram cannot resolve beyond
// it). An empty (or nil) histogram reports NaN.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i, c := range h.counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: report the largest finite bound, or the mean
			// when the histogram has no finite bounds at all.
			if len(h.bounds) == 0 {
				return h.sum / float64(h.count)
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(h.bounds) == 0 {
		return h.sum / float64(h.count)
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}
