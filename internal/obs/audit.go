package obs

import (
	"fmt"
	"io"
	"time"
)

// WriteAudit renders the trace as a human-readable decision audit: one
// block per span tree (controller rounds, long-term rounds), with the
// diagnosis evidence, the rejected Figure-6 branches (✗), the performed
// actions (✓), and nested migration/re-plan spans indented beneath their
// parent decision.
func (o *Observer) WriteAudit(w io.Writer) error {
	if o == nil {
		return nil
	}
	children := make(map[uint64][]*Span)
	for _, e := range o.timeline {
		if e.span != nil && e.span.Parent != 0 {
			children[e.span.Parent] = append(children[e.span.Parent], e.span)
		}
	}
	for _, e := range o.timeline {
		switch {
		case e.ev != nil:
			if err := writeAuditEvent(w, *e.ev, 0); err != nil {
				return err
			}
		case e.span != nil && e.span.Parent == 0:
			if err := writeAuditSpan(w, e.span, children, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func auditIndent(depth int) string {
	const pad = "                                "
	n := 2 * depth
	if n > len(pad) {
		n = len(pad)
	}
	return pad[:n]
}

func writeAuditSpan(w io.Writer, sp *Span, children map[uint64][]*Span, depth int) error {
	dur := ""
	if sp.Ended && sp.End > sp.Start {
		dur = fmt.Sprintf(" (+%s)", time.Duration(sp.End-sp.Start))
	} else if !sp.Ended {
		dur = " (unfinished)"
	}
	if _, err := fmt.Fprintf(w, "%st=%7.1fs %s%s%s\n",
		auditIndent(depth), sp.Start.Seconds(), sp.Name, formatAttrs(sp.Attrs), dur); err != nil {
		return err
	}
	// Interleave the span's events and child spans in time order; events
	// within one instant keep emission order, and a child span starting at
	// the same instant as an event follows the events recorded before it.
	kids := children[sp.ID]
	ei, ki := 0, 0
	for ei < len(sp.Events) || ki < len(kids) {
		takeEvent := ki >= len(kids) ||
			(ei < len(sp.Events) && sp.Events[ei].At <= kids[ki].Start)
		if takeEvent {
			if err := writeAuditEvent(w, sp.Events[ei], depth+1); err != nil {
				return err
			}
			ei++
			continue
		}
		if err := writeAuditSpan(w, kids[ki], children, depth+1); err != nil {
			return err
		}
		ki++
	}
	return nil
}

func writeAuditEvent(w io.Writer, ev Event, depth int) error {
	switch ev.Name {
	case "reject":
		_, err := fmt.Fprintf(w, "%s✗ %s — %s%s\n",
			auditIndent(depth), ev.Get("branch").Text(), ev.Get("reason").Text(),
			formatAttrs(dropKeys(ev.Attrs, "branch", "reason")))
		return err
	case "action":
		_, err := fmt.Fprintf(w, "%s✓ %s op=%s: %s\n",
			auditIndent(depth), ev.Get("kind").Text(), ev.Get("op").Text(), ev.Get("detail").Text())
		return err
	default:
		_, err := fmt.Fprintf(w, "%s· %s%s\n", auditIndent(depth), ev.Name, formatAttrs(ev.Attrs))
		return err
	}
}

func formatAttrs(attrs []KV) string {
	if len(attrs) == 0 {
		return ""
	}
	out := ""
	for _, kv := range attrs {
		out += " " + kv.Key + "=" + kv.Val.Text()
	}
	return out
}

func dropKeys(attrs []KV, keys ...string) []KV {
	var out []KV
	for _, kv := range attrs {
		skip := false
		for _, k := range keys {
			if kv.Key == k {
				skip = true
				break
			}
		}
		if !skip {
			out = append(out, kv)
		}
	}
	return out
}

// WriteActionLog prints the adaptation log — every "action" event in the
// timeline — in the classic waspd format, and reports how many actions it
// wrote. This is the one code path all runners share for the log.
func (o *Observer) WriteActionLog(w io.Writer) (int, error) {
	events := o.Events("action")
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "  t=%5ds %-10s op=%-3s %s\n",
			int(ev.At.Seconds()), ev.Get("kind").Text(), ev.Get("op").Text(), ev.Get("detail").Text()); err != nil {
			return 0, err
		}
	}
	return len(events), nil
}
