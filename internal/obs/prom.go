package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/wasp-stream/wasp/internal/detutil"
)

// WriteProm dumps the registry in the Prometheus text exposition format
// (one final scrape, suitable for `promtool check metrics` or offline
// ingestion). Series are sorted by name then labels, so output is
// deterministic for deterministic inputs.
func (o *Observer) WriteProm(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.reg.WriteProm(w)
}

// WriteProm writes the registry's instruments in Prometheus text format.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		name string
		key  string
		emit func(io.Writer) error
	}
	var all []series

	for _, key := range detutil.SortedKeys(r.counters) {
		c := r.counters[key]
		all = append(all, series{name: c.name, key: key, emit: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %s\n", c.series, formatFloat(c.v))
			return err
		}})
	}
	for _, key := range detutil.SortedKeys(r.gauges) {
		g := r.gauges[key]
		all = append(all, series{name: g.name, key: key, emit: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %s\n", g.series, formatFloat(g.v))
			return err
		}})
	}
	for _, key := range detutil.SortedKeys(r.hists) {
		h := r.hists[key]
		all = append(all, series{name: h.name, key: key, emit: func(w io.Writer) error {
			return writePromHistogram(w, h)
		}})
	}

	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].key < all[j].key
	})

	kinds := make(map[string]string)
	for _, c := range r.counters {
		kinds[c.name] = "counter"
	}
	for _, g := range r.gauges {
		kinds[g.name] = "gauge"
	}
	for _, h := range r.hists {
		kinds[h.name] = "histogram"
	}

	lastName := ""
	for _, s := range all {
		if s.name != lastName {
			lastName = s.name
			if help, ok := r.help[s.name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, kinds[s.name]); err != nil {
				return err
			}
		}
		if err := s.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram writes the cumulative bucket series plus _sum and
// _count for one histogram series.
func writePromHistogram(w io.Writer, h *Histogram) error {
	base, labels := splitSeries(h.series)
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			base, withLabel(labels, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabel(labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(h.sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.count)
	return err
}

// splitSeries splits `name{labels}` into name and `{labels}` (labels may
// be empty).
func splitSeries(series string) (name, labels string) {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i], series[i:]
	}
	return series, ""
}

// withLabel inserts an extra label into a `{...}` label block (which may
// be empty).
func withLabel(labels, k, v string) string {
	extra := k + "=" + strconv.Quote(v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
