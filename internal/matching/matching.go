// Package matching solves the bottleneck (minmax) bipartite assignment
// problem behind WASP's network-aware state migration (§5): map each
// migrating task (at a site in S−S′) to a destination slot site (in S′−S)
// so that the slowest individual state transfer — which determines the
// whole adaptation's transition time — is minimized:
//
//	min max( |state_s1| / B^{s2}_{s1} )  over  s1∈S−S′, s2∈S′−S.
package matching

import (
	"errors"
	"math"
	"sort"
)

// ErrInfeasible is returned when no left-perfect matching exists.
var ErrInfeasible = errors.New("matching: no feasible assignment")

// MinMax finds an assignment of every left node i (0..n-1) to a distinct
// right node j (0..m-1), n ≤ m, minimizing the maximum cost[i][j] over the
// chosen pairs. Entries set to +Inf (or NaN) are forbidden edges.
//
// It returns assign (assign[i] = j) and the bottleneck cost. It runs a
// binary search over the distinct finite costs, testing feasibility with
// Kuhn's augmenting-path matching — O(log E · V·E), ample for WASP's
// ≤16-site instances.
func MinMax(cost [][]float64) (assign []int, bottleneck float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("matching: ragged cost matrix")
		}
	}
	if n > m {
		return nil, 0, ErrInfeasible
	}

	// Collect the distinct finite costs.
	var values []float64
	for i := range cost {
		for j := range cost[i] {
			c := cost[i][j]
			if !math.IsInf(c, 1) && !math.IsNaN(c) {
				values = append(values, c)
			}
		}
	}
	if len(values) == 0 {
		return nil, 0, ErrInfeasible
	}
	sort.Float64s(values)
	values = dedup(values)

	// Binary search the smallest threshold admitting a perfect matching.
	lo, hi := 0, len(values)-1
	if matchSize(cost, values[hi]) < n {
		return nil, 0, ErrInfeasible
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if matchSize(cost, values[mid]) == n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bottleneck = values[lo]
	assign = buildMatching(cost, bottleneck)
	return assign, bottleneck, nil
}

func dedup(xs []float64) []float64 {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// matchSize returns the maximum matching size using only edges with
// cost ≤ threshold.
func matchSize(cost [][]float64, threshold float64) int {
	assign := buildMatching(cost, threshold)
	size := 0
	for _, j := range assign {
		if j >= 0 {
			size++
		}
	}
	return size
}

// buildMatching computes a maximum matching (Kuhn's algorithm) over edges
// with cost ≤ threshold, returning assign[i] = matched right node or -1.
func buildMatching(cost [][]float64, threshold float64) []int {
	n, m := len(cost), len(cost[0])
	assign := make([]int, n) // left -> right
	rmatch := make([]int, m) // right -> left
	for i := range assign {
		assign[i] = -1
	}
	for j := range rmatch {
		rmatch[j] = -1
	}
	visited := make([]bool, m)
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < m; j++ {
			if visited[j] || !(cost[i][j] <= threshold) { // NaN-safe
				continue
			}
			visited[j] = true
			if rmatch[j] == -1 || try(rmatch[j]) {
				rmatch[j] = i
				assign[i] = j
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for j := range visited {
			visited[j] = false
		}
		try(i)
	}
	return assign
}

// MinSum finds an assignment of every left node to a distinct right node
// (n ≤ m) minimizing the total cost, via the Hungarian algorithm
// (Jonker-style O(n²m) shortest augmenting paths). Forbidden edges are
// +Inf. Used as a secondary objective/tie-breaker for placements.
func MinSum(cost [][]float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, errors.New("matching: ragged cost matrix")
		}
	}
	if n > m {
		return nil, 0, ErrInfeasible
	}

	const inf = math.MaxFloat64
	// Potentials-based shortest augmenting path (1-indexed sentinel form).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = left node matched to right j (1-indexed)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				c := cost[i0-1][j-1]
				if math.IsNaN(c) {
					c = inf
				}
				cur := c - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 || delta == inf {
				return nil, 0, ErrInfeasible
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		c := cost[i][assign[i]]
		if math.IsInf(c, 1) || math.IsNaN(c) {
			return nil, 0, ErrInfeasible
		}
		total += c
	}
	return assign, total, nil
}
