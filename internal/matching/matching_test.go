package matching

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinMaxSimple(t *testing.T) {
	cost := [][]float64{
		{10, 2},
		{3, 10},
	}
	assign, b, err := MinMax(cost)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Fatalf("bottleneck = %v, want 3", b)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

func TestMinMaxRectangular(t *testing.T) {
	// 2 tasks, 3 candidate destinations.
	cost := [][]float64{
		{9, 5, 7},
		{6, 8, 4},
	}
	assign, b, err := MinMax(cost)
	if err != nil {
		t.Fatal(err)
	}
	if b != 5 {
		t.Fatalf("bottleneck = %v, want 5", b)
	}
	if assign[0] != 1 || assign[1] != 2 {
		t.Fatalf("assign = %v, want [1 2]", assign)
	}
}

func TestMinMaxForbiddenEdges(t *testing.T) {
	inf := math.Inf(1)
	cost := [][]float64{
		{inf, 4},
		{3, inf},
	}
	assign, b, err := MinMax(cost)
	if err != nil {
		t.Fatal(err)
	}
	if b != 4 || assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign=%v bottleneck=%v", assign, b)
	}
}

func TestMinMaxInfeasible(t *testing.T) {
	inf := math.Inf(1)
	cases := [][][]float64{
		{{inf, inf}, {1, 2}},     // row 0 has no edges
		{{1, 2}, {3, 4}, {5, 6}}, // n > m
	}
	for i, cost := range cases {
		if _, _, err := MinMax(cost); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("case %d: err = %v, want ErrInfeasible", i, err)
		}
	}
}

func TestMinMaxEmpty(t *testing.T) {
	assign, b, err := MinMax(nil)
	if err != nil || assign != nil || b != 0 {
		t.Fatalf("empty MinMax = (%v,%v,%v)", assign, b, err)
	}
}

func TestMinMaxRagged(t *testing.T) {
	if _, _, err := MinMax([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

// bruteMinMax exhaustively searches all assignments (n! · C(m,n)).
func bruteMinMax(cost [][]float64) (float64, bool) {
	n := len(cost)
	m := len(cost[0])
	best := math.Inf(1)
	used := make([]bool, m)
	var rec func(i int, cur float64)
	found := false
	rec = func(i int, cur float64) {
		if cur >= best {
			return
		}
		if i == n {
			best = cur
			found = true
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			used[j] = true
			rec(i+1, math.Max(cur, cost[i][j]))
			used[j] = false
		}
	}
	rec(0, math.Inf(-1))
	return best, found
}

func TestMinMaxMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.15 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = float64(rng.Intn(50))
				}
			}
		}
		want, feasible := bruteMinMax(cost)
		assign, got, err := MinMax(cost)
		if !feasible {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: err = %v, want ErrInfeasible", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: err = %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: bottleneck = %v, want %v (cost=%v)", trial, got, want, cost)
		}
		// Check assignment validity and consistency with bottleneck.
		seen := make(map[int]bool)
		for i, j := range assign {
			if j < 0 || j >= m || seen[j] {
				t.Fatalf("trial %d: invalid assign %v", trial, assign)
			}
			seen[j] = true
			if cost[i][j] > got {
				t.Fatalf("trial %d: pair cost %v exceeds bottleneck %v", trial, cost[i][j], got)
			}
		}
	}
}

func TestMinSumSimple(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := MinSum(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v, want 5 (assign %v)", total, assign)
	}
}

func bruteMinSum(cost [][]float64) (float64, bool) {
	n := len(cost)
	m := len(cost[0])
	best := math.Inf(1)
	found := false
	used := make([]bool, m)
	var rec func(i int, cur float64)
	rec = func(i int, cur float64) {
		if cur >= best {
			return
		}
		if i == n {
			best = cur
			found = true
			return
		}
		for j := 0; j < m; j++ {
			if used[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			used[j] = true
			rec(i+1, cur+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best, found
}

func TestMinSumMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				if rng.Float64() < 0.1 {
					cost[i][j] = math.Inf(1)
				} else {
					cost[i][j] = float64(rng.Intn(40))
				}
			}
		}
		want, feasible := bruteMinSum(cost)
		_, got, err := MinSum(cost)
		if !feasible {
			if err == nil {
				t.Fatalf("trial %d: infeasible instance accepted", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: err = %v (cost=%v)", trial, err, cost)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: total = %v, want %v (cost=%v)", trial, got, want, cost)
		}
	}
}

// Property: MinMax bottleneck is never below the best single edge of any
// row (each row must be matched to something at least its min).
func TestMinMaxLowerBoundProperty(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(2)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
		}
		_, b, err := MinMax(cost)
		if err != nil {
			return false
		}
		// The bottleneck must be >= max over rows of the row minimum.
		lower := 0.0
		for i := range cost {
			rowMin := math.Inf(1)
			for _, c := range cost[i] {
				rowMin = math.Min(rowMin, c)
			}
			lower = math.Max(lower, rowMin)
		}
		return b >= lower-1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
