package engine

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestCrashSiteStopsProcessingAndRestoreResumes(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 30*time.Second)
	preDelivered := func() float64 { _, d, _ := r.eng.Totals(); return d }()
	if preDelivered == 0 {
		t.Fatal("pipeline not flowing before the crash")
	}

	// Site 1 hosts the map and the sink: the crash wipes them.
	r.eng.CrashSite(1)
	if !r.eng.SiteDown(1) || r.eng.SiteDown(0) {
		t.Fatal("down-site bookkeeping wrong")
	}
	if got := r.eng.DownSites(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DownSites = %v", got)
	}
	r.eng.TakeDeliveries()
	r.run(t, 60*time.Second)
	if ds := r.eng.TakeDeliveries(); len(ds) != 0 {
		t.Fatalf("deliveries continued into a dead sink site: %d batches", len(ds))
	}
	midDelivered := func() float64 { _, d, _ := r.eng.Totals(); return d }()
	if midDelivered != preDelivered {
		t.Fatalf("delivered moved during outage: %v -> %v", preDelivered, midDelivered)
	}
	// External arrivals never pause; the source keeps queueing at site 0.
	gen, _, _ := r.eng.Totals()
	if math.Abs(gen-600000) > 1 {
		t.Fatalf("generated = %v, want 600000", gen)
	}

	// Restart: the site returns empty and the pipeline resumes.
	r.eng.RestoreSite(1)
	if r.eng.SiteDown(1) {
		t.Fatal("site still down after restore")
	}
	r.run(t, 120*time.Second)
	postDelivered := func() float64 { _, d, _ := r.eng.Totals(); return d }()
	if postDelivered <= midDelivered {
		t.Fatal("pipeline did not resume after site restart")
	}
}

func TestCrashSourceSiteLosesArrivals(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 10*time.Second)
	lost0, _ := r.eng.Lost()
	if lost0 != 0 {
		t.Fatalf("lost before any crash = %v", lost0)
	}

	r.eng.CrashSite(0)
	r.run(t, 20*time.Second)
	gen, _, _ := r.eng.Totals()
	if math.Abs(gen-200000) > 1 {
		t.Fatalf("generation paused during source-site outage: %v", gen)
	}
	lost, restored := r.eng.Lost()
	// 10 s of arrivals at 10000 ev/s died at the dead ingest site, plus
	// whatever was queued on site 0 at crash time.
	if lost < 100000 {
		t.Fatalf("lost = %v, want >= 100000", lost)
	}
	if restored != 0 {
		t.Fatalf("restored = %v without any restore", restored)
	}

	r.eng.RestoreSite(0)
	r.eng.TakeDeliveries()
	r.run(t, 40*time.Second)
	if ds := r.eng.TakeDeliveries(); len(ds) == 0 {
		t.Fatal("no deliveries after source site restart")
	}
	lostAfter, _ := r.eng.Lost()
	if lostAfter != lost {
		t.Fatalf("loss kept growing after restart: %v -> %v", lost, lostAfter)
	}
}

func TestCrashedSiteOffersNoSlots(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	free := r.eng.FreeSlots()
	if free[2] != 8 {
		t.Fatalf("free[2] = %d, want 8", free[2])
	}
	r.eng.CrashSite(2)
	free = r.eng.FreeSlots()
	if free[2] != 0 {
		t.Fatalf("free[2] = %d after crash, want 0", free[2])
	}
	r.eng.RestoreSite(2)
	if free = r.eng.FreeSlots(); free[2] != 8 {
		t.Fatalf("free[2] = %d after restore, want 8", free[2])
	}
}

func TestSiteStragglerComposesWithOperatorStraggler(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	mp := r.ids[1]
	g := r.eng.groups[groupKey{op: mp, site: 1}]
	if f := r.eng.stragglerFactor(g); f != 1 {
		t.Fatalf("healthy factor = %v", f)
	}
	r.eng.InjectStraggler(mp, 1, 0.5)
	r.eng.SetSiteStraggler(1, 0.5)
	if f := r.eng.stragglerFactor(g); f != 0.25 {
		t.Fatalf("composed factor = %v, want 0.25", f)
	}
	r.eng.SetSiteStraggler(1, 1) // clears
	if f := r.eng.stragglerFactor(g); f != 0.5 {
		t.Fatalf("factor after site heal = %v, want 0.5", f)
	}
}

// windowRig deploys src(site0) → agg(10 s window, site1) → sink(site2) so
// the aggregate holds checkpointable window state.
func windowRig(t *testing.T, rate float64) *rig {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: rate,
	})
	agg := g.AddOperator(plan.Operator{
		Name: "agg", Kind: plan.KindAggregate, Splittable: true,
		Selectivity: 0.01, OutEventBytes: 200, CostPerEvent: 1,
		Window: 10 * time.Second, StateBytes: 1e6,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 2})
	g.MustConnect(src, agg)
	g.MustConnect(agg, snk)

	top := threeSites(t, 80)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := New(Config{}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[agg].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{2}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return &rig{top: top, net: net, sched: sched, eng: eng, g: g, ids: []plan.OpID{src, agg, snk}, pp: pp}
}

func TestSnapshotGroupDeterministicRoundTrip(t *testing.T) {
	r := windowRig(t, 5000)
	agg := r.ids[1]
	r.run(t, 15*time.Second) // mid-window: the aggregate holds open state

	a, err := r.eng.SnapshotGroup(agg, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.eng.SnapshotGroup(agg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same state snapshotted to different bytes")
	}
	wins, frontier, err := decodeSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) == 0 {
		t.Fatal("snapshot holds no window state mid-window")
	}
	if frontier == 0 {
		t.Fatal("snapshot frontier empty")
	}

	// Snapshotting a dead site must fail: the bytes are gone with it.
	r.eng.CrashSite(1)
	if _, err := r.eng.SnapshotGroup(agg, 1); err == nil {
		t.Fatal("SnapshotGroup succeeded on a crashed site")
	}

	// The crash counted the window state as lost; restoring the snapshot
	// into a re-placed group claws it back.
	lost, _ := r.eng.Lost()
	if lost <= 0 {
		t.Fatal("crash of a stateful site recorded no loss")
	}
	if err := r.eng.Reconfigure(agg, []topology.SiteID{2}, nil, nil); err != nil {
		t.Fatal(err)
	}
	r.run(t, 16*time.Second) // let the (transferless) reconfiguration land
	if err := r.eng.RestoreOperatorState(agg, a); err != nil {
		t.Fatal(err)
	}
	_, restored := r.eng.Lost()
	if restored <= 0 {
		t.Fatal("restore credited nothing")
	}
	if restored > lost+1e-9 {
		t.Fatalf("restored %v exceeds lost %v", restored, lost)
	}

	// The restored windows fire and reach the sink.
	r.eng.TakeDeliveries()
	r.run(t, 40*time.Second)
	if ds := r.eng.TakeDeliveries(); len(ds) == 0 {
		t.Fatal("restored state never reached the sink")
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	if _, _, err := decodeSnapshot(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, _, err := decodeSnapshot([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	r := windowRig(t, 1000)
	r.run(t, 5*time.Second)
	snap, err := r.eng.SnapshotGroup(r.ids[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := decodeSnapshot(snap[:len(snap)-1]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestCrashSiteIdempotentAndUnknownRestoreNoop(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	r.run(t, 5*time.Second)
	r.eng.CrashSite(1)
	lost1, _ := r.eng.Lost()
	r.eng.CrashSite(1) // double crash must not double-count
	lost2, _ := r.eng.Lost()
	if lost1 != lost2 {
		t.Fatalf("double crash double-counted loss: %v -> %v", lost1, lost2)
	}
	r.eng.RestoreSite(2) // was never down
	if r.eng.SiteDown(2) {
		t.Fatal("restore of a live site marked it down")
	}
}
