package engine

// Substrate micro-benchmarks: the per-tick hot path underneath every §8
// experiment. BenchmarkTickAllocs reports allocs/op for one full engine
// tick (flows → netsim → delivery → generation → processing) on the
// paper's Top-K pipeline over the generated testbed; TestTickAllocsCeiling
// locks the ceiling in with testing.AllocsPerRun so hot-path allocation
// regressions fail the suite.

import (
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/queries"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// benchRig deploys the Top-K query on the §8.2 generated testbed — the
// same substrate experiment.Run uses — without an adaptation controller,
// so the measured cost is the raw tick.
func benchRig(tb testing.TB) (*Engine, *vclock.Scheduler) {
	tb.Helper()
	top := topology.Generate(topology.DefaultGenConfig(1))
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	qcfg := queries.Config{
		SourceSites:   top.SitesOfKind(topology.Edge),
		SinkSite:      top.SitesOfKind(topology.DataCenter)[0],
		RatePerSource: 10000,
	}
	q := queries.TopKTopics(qcfg)
	best, _, err := physical.PlanQuery(q.Graph, q.Spec, top, physical.PlannerConfig{
		ScheduleConfig: physical.ScheduleConfig{Alpha: 0.8, DefaultParallelism: 1},
		MaxVariants:    40,
	})
	if err != nil {
		tb.Fatal(err)
	}
	eng := New(Config{SlotRate: 100000}, top, net, sched)
	if err := eng.Deploy(best.Plan); err != nil {
		tb.Fatal(err)
	}
	eng.Start()
	return eng, sched
}

// warmTo advances the rig into steady state and drains the delivery log.
func warmTo(tb testing.TB, eng *Engine, sched *vclock.Scheduler, until time.Duration) {
	tb.Helper()
	if err := sched.RunUntil(vclock.Time(until)); err != nil {
		tb.Fatal(err)
	}
	eng.TakeDeliveries()
}

// BenchmarkEngineTickHot measures one steady-state simulation tick.
func BenchmarkEngineTickHot(b *testing.B) {
	eng, sched := benchRig(b)
	warmTo(b, eng, sched, 40*time.Second)
	now := sched.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += vclock.Time(250 * time.Millisecond)
		if err := sched.RunUntil(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	eng.TakeDeliveries()
}

// BenchmarkTickAllocs is BenchmarkEngineTickHot with the delivery log
// drained outside the timer every virtual 20 s (as experiment.Run does),
// so the reported allocs/op is the per-tick steady state rather than the
// growth of an unbounded slice.
func BenchmarkTickAllocs(b *testing.B) {
	eng, sched := benchRig(b)
	warmTo(b, eng, sched, 40*time.Second)
	now := sched.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%80 == 79 {
			b.StopTimer()
			eng.TakeDeliveries()
			b.StartTimer()
		}
		now += vclock.Time(250 * time.Millisecond)
		if err := sched.RunUntil(now); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	eng.TakeDeliveries()
}

// BenchmarkSortedFlows measures the deterministic flow-order lookup the
// tick performs before setting link demands.
func BenchmarkSortedFlows(b *testing.B) {
	eng, sched := benchRig(b)
	warmTo(b, eng, sched, 40*time.Second)
	if len(eng.flows) == 0 {
		b.Fatal("no flows after warm-up")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := eng.sortedFlows(); len(got) == 0 {
			b.Fatal("empty flow order")
		}
	}
}

// TestTickAllocsCeiling locks in the tick hot path's allocation ceiling.
// The steady-state tick must stay allocation-free apart from the ticker
// event chain, amortized queue/delivery growth, and occasional window
// accumulator churn.
func TestTickAllocsCeiling(t *testing.T) {
	eng, sched := benchRig(t)
	warmTo(t, eng, sched, 40*time.Second)
	now := sched.Now()
	ticks := 0
	avg := testing.AllocsPerRun(800, func() {
		now += vclock.Time(250 * time.Millisecond)
		if err := sched.RunUntil(now); err != nil {
			t.Fatal(err)
		}
		ticks++
		if ticks%80 == 0 {
			eng.TakeDeliveries()
		}
	})
	// Seed code sat at ~200 allocs/tick; the columnar hot path (reused
	// ticker event, flat flow/group sweeps, epoch-cached fan-out) runs at
	// ~2. The ceiling leaves room for amortized queue/delivery growth
	// without letting per-tick map traffic ever creep back in.
	const ceiling = 8
	if avg > ceiling {
		t.Errorf("engine tick allocates %.1f objects/op, want <= %d", avg, ceiling)
	}
}
