// Package engine is WASP's flow-mode wide-area runtime: it executes a
// physical plan over the netsim WAN emulator using a fluid (rate-based)
// model of record flow. Tasks are aggregated per (operator, site) into
// task groups with event-cohort queues; WAN links carry inter-site flows
// with fair sharing; windowed operators hold cohorts to window boundaries;
// backpressure throttles upstream senders; failures, state migration, and
// plan switches are first-class operations.
//
// This is the substrate all §8 experiments run on: it reproduces delay,
// processing-ratio, queueing, migration-stall, and recovery dynamics of
// the paper's emulated testbed at a tiny fraction of real time, while the
// record-mode engine (internal/stream) provides exact operator semantics.
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Config parameterises an Engine. Zero fields take the listed defaults.
type Config struct {
	// Tick is the simulation step (default 250 ms). Smaller ticks give
	// finer delay resolution at proportional cost.
	Tick time.Duration
	// SlotRate is the per-slot processing capacity in events/s for an
	// operator with CostPerEvent 1 (default 25000).
	SlotRate float64
	// BackpressureSec bounds each queue at this many seconds of work at
	// the consumer's capacity (default 4 s); full queues throttle
	// upstream senders and producers.
	BackpressureSec float64
	// DropLate enables the Degrade baseline: events whose accumulated
	// delay exceeds SLO are dropped instead of processed.
	DropLate bool
	// SLO is the Degrade latency objective (default 10 s, §8.4).
	SLO time.Duration
}

func (c Config) withDefaults() Config {
	if c.Tick == 0 {
		c.Tick = 250 * time.Millisecond
	}
	if c.SlotRate == 0 {
		c.SlotRate = 25000
	}
	if c.BackpressureSec == 0 {
		c.BackpressureSec = 4
	}
	if c.SLO == 0 {
		c.SLO = 10 * time.Second
	}
	return c
}

// groupKey identifies a task group: all tasks of one operator at one site.
type groupKey struct {
	op   plan.OpID
	site topology.SiteID
}

// winAcc accumulates one tumbling window's processed output.
type winAcc struct {
	count    float64
	srcTotal float64 // source-equivalent total (Σ count×worth)
	maxBorn  vclock.Time
}

// winSlot is one buffered window in a group's windows slice, which is kept
// sorted ascending by start. A slice replaces the old map[start]*winAcc:
// the hot path appends to the last slot (the current window) without
// allocating, and firing/draining walk the natural sorted order without
// sorting keys first.
type winSlot struct {
	start vclock.Time
	winAcc
}

// group is the collective execution of an operator's tasks at one site.
type group struct {
	op    *plan.Operator
	site  topology.SiteID
	tasks int
	inQ   cohortQueue

	// Windowed operators buffer processed output per window start,
	// ascending by start. windowed distinguishes "windowed operator with
	// no buffered windows" from "stateless operator".
	windows  []winSlot
	windowed bool
	// maxProcessedBorn is the event-time frontier: windows ending at or
	// before it fire.
	maxProcessedBorn vclock.Time

	// Suspension is split into two independent flags so that a manual
	// Halt/Resume (tests, operator control) can never release — or be
	// released by — the suspension a reconfiguration or re-plan holds.
	// Halt/Resume touch only haltedManual; Reconfigure/BeginReplan and
	// their aborts touch only haltedAdapt. Both are idempotent.
	haltedManual bool
	haltedAdapt  bool

	// Counters since the last Sample call.
	arrived       float64
	processed     float64
	emitted       float64
	dropped       float64
	generated     float64 // sources: external events generated
	backpressured bool

	// bpActive tracks the backpressure edge for telemetry: an onset event
	// fires only on the false→true transition (observability only).
	bpActive bool

	// Cached invariants of the group, set at construction (addGroup): the
	// processing budget in events/s, the backpressure bound in events, the
	// sink flag, and the effective selectivity. op and tasks never change
	// after construction, so these never go stale.
	cap     float64
	bpLimit float64
	isSink  bool
	sigma   float64
	// front caches frontOps membership (set at wiring rebuild, which
	// always follows a refreshGoodputModel because both are triggered by
	// the same structural mutations).
	front bool
	// out lists the group's outbound send flows (set at wiring rebuild).
	out []*edgeFlow
	// fan caches fanPlans[op.ID] for fanOut, stamped by the topo
	// generation so a mid-tick plan rebuild refreshes it on next use.
	fan    []fanTarget
	fanGen uint64
}

// suspended reports whether the group is withheld from processing by
// either suspension source.
//
//waspvet:hotpath
func (g *group) suspended() bool { return g.haltedManual || g.haltedAdapt }

// capacity returns the group's processing budget in events/s.
func (g *group) capacity(slotRate float64) float64 {
	cost := g.op.CostPerEvent
	if cost <= 0 {
		cost = 1
	}
	return float64(g.tasks) * slotRate / cost
}

// flowKey identifies one inter-site flow of one logical edge.
type flowKey struct {
	from, to plan.OpID
	fromSite topology.SiteID
	toSite   topology.SiteID
}

// edgeFlow is the per-(edge, site-pair) sender queue plus its netsim flow
// (nil for intra-site delivery).
type edgeFlow struct {
	key        flowKey
	q          cohortQueue
	flow       *netsim.Flow
	eventBytes float64
	latency    vclock.Time
	// linkID indexes the engine's per-tick link capacity cache (assigned
	// at wiring rebuild; every consumer runs behind ensureWiring).
	linkID int32
}

// SinkDelivery is one tick's worth of events arriving at a sink.
type SinkDelivery struct {
	At    vclock.Time
	Delay vclock.Time // average delay of this cohort batch
	Count float64
}

// Engine runs one job (physical plan) on the WAN emulator.
type Engine struct {
	cfg   Config
	top   *topology.Topology
	net   *netsim.Network
	sched *vclock.Scheduler

	//waspvet:guardedby topoDirty
	plan *physical.Plan
	//waspvet:guardedby topoDirty
	groups map[groupKey]*group
	//waspvet:guardedby flowsDirty,flowsEpoch
	flows map[flowKey]*edgeFlow

	workloadFactor *trace.Trace
	sourceFactors  map[plan.OpID]*trace.Trace
	stragglers     map[groupKey]float64 // capacity factor per (op, site)

	ticker  *vclock.Event
	lastNow vclock.Time

	failedUntil vclock.Time

	// Partial-failure state, dense by SiteID so the hot path indexes
	// instead of hashing: crashed sites and per-site compute slowdowns
	// (multiplied with the per-(op,site) stragglers above; 1 = healthy).
	siteDown  []bool
	siteStrag []float64

	// Failure loss accounting in source-equivalent units: events destroyed
	// by site crashes (wiped queues, window state, outbound send queues,
	// and source arrivals at down sites), and the portion brought back by
	// checkpoint restores. Net loss = lost − restored. The *Beyond
	// counters track the subset already past ingest, which must be
	// subtracted back out of the goodput "processed" figure.
	lostSrcEquiv      float64
	restoredSrcEquiv  float64
	lostBeyondSrc     float64
	restoredBeyondSrc float64
	// reinjectedSrcEquiv is the uncapped total a checkpoint restore put
	// back into live groups. restoredSrcEquiv is capped at the loss so net
	// loss stays honest; conservation checks need the raw amount, since
	// replayed windows are delivered (again) downstream.
	reinjectedSrcEquiv float64

	reconfigs []*reconfiguration
	replan    *pendingReplan

	// Sink accounting.
	sinkArrived       float64
	sinkDelaySum      float64 // seconds·events
	deliveries        []SinkDelivery
	totalGenerated    float64
	totalDelivered    float64
	totalDropped      float64
	deliveredSrcEquiv float64 // sink deliveries in source-equivalent units

	// Goodput accounting in source-equivalent units (events at op X are
	// divided by κ(X), the expected events at X's input per source event
	// of X's own branch), for the paper's processing-ratio metric (§8.3).
	// "Processed" events are those transported past the ingest stages
	// (the operators consuming sources directly) minus any later drops.
	//waspvet:guardedby topoDirty
	frontOps         map[plan.OpID]bool // operators fed directly by sources
	transportedSrc   float64            // delivered past ingest, src equivalents
	droppedSrcEquiv  float64            // all drops, src equivalents
	droppedBeyondSrc float64            // drops after ingest, src equivalents

	// lastSample tracks the previous Sample time for rate computation.
	lastSample vclock.Time

	// obs is the optional observability hookup (nil = zero overhead); tel
	// caches the registry instruments the hot path touches.
	obs *obs.Observer
	tel engineTel

	// flight is the optional per-tick flight recorder (nil = zero
	// overhead); fcols caches its column handles, rebuilt when the
	// topo/flow cache generations move (see flight.go).
	flight *obs.FlightRecorder
	fcols  flightCols

	// ticks counts this engine's simulation ticks (atomic so bench
	// harnesses may read it from another goroutine mid-run).
	ticks atomic.Int64

	// Tick hot-path caches and scratch buffers (see hotpath.go for the
	// invalidation rules). topoErr remembers a StageIDs failure so cached
	// paths mirror the uncached error behaviour exactly.
	topoDirty   bool
	topoErr     error
	stageOrder  []plan.OpID
	stageGroups [][]*group
	srcGens     []srcGen
	fanPlans    map[plan.OpID][]fanTarget
	flowsDirty  bool
	flowList    []*edgeFlow
	outFlows    map[groupKey][]*edgeFlow
	// topoGen/flowsGen count cache rebuilds so derived caches (the flight
	// recorder's column handles) can detect structural change without a
	// dirty flag of their own.
	topoGen  uint64
	flowsGen uint64
	// flowsEpoch bumps on EVERY flow-set mutation (not just cache
	// rebuilds), invalidating the fan plans' per-sender flow caches the
	// moment a flow is added or torn down.
	flowsEpoch uint64
	flowKeyBuf []flowKey
	popBuf     []cohort

	// Columnar wiring (see hotpath.go): flat parallel arrays over flowList
	// plus the canonical group list, rebuilt whenever topoGen/flowsGen
	// move. The demand/delivery passes sweep these slices linearly instead
	// of chasing map entries; rebuilds allocate fresh backing arrays so a
	// snapshot captured earlier in a tick stays valid (same contract as
	// the PR 4 caches).
	wiringGen uint64
	wTopoGen  uint64
	wFlowsGen uint64
	groupList []*group // all groups, groupKeyLess order
	fNet      []*netsim.Flow
	fBytes    []float64
	fLatency  []vclock.Time
	fFromSite []topology.SiteID
	fToSite   []topology.SiteID
	fDst      []*group // destination group (nil = vanished mid-reconfig)
	fSrcFront []bool   // sending operator feeds straight past ingest
	// Per-tick link capacity cache: flows carry a dense link id into
	// linkCaps, refreshed once per (tick, wiring, fault) stamp — capacity
	// is a pure function of (site pair, time, faults) and nothing changes
	// it mid-tick.
	linkPairs []sitePair
	linkCaps  []float64
	capsValid bool
	capsAt    vclock.Time
	capsGen   uint64 // wiringGen the caps were computed under
	capsFault uint64 // net.LatencyGen the caps were computed under
	// opFlows indexes flowList by sending operator (contiguous subslices:
	// flowList sorts by from first), for Sample/QueueLen.
	opFlows map[plan.OpID][]*edgeFlow
	// latGen is the net.LatencyGen at the last flow-latency refresh; when
	// the network reports a latency-affecting change (link fault set or
	// cleared), every flow's cached latency is re-sampled.
	latGen uint64
}

// sitePair is one directed WAN link used by at least one flow.
type sitePair struct {
	from, to topology.SiteID
}

// engineTel caches the engine's registry instruments so hot-path updates
// skip the registry's map lookups. All handles are nil when obs is nil.
type engineTel struct {
	sinkDelay  *obs.Histogram
	migBytes   *obs.Counter
	migSeconds *obs.Histogram
	reconfigs  *obs.Counter
	replans    *obs.Counter
	failures   *obs.Counter
}

// New creates an engine over the given substrate. The engine does not
// start ticking until Start.
func New(cfg Config, top *topology.Topology, net *netsim.Network, sched *vclock.Scheduler) *Engine {
	e := &Engine{
		cfg:            cfg.withDefaults(),
		top:            top,
		net:            net,
		sched:          sched,
		groups:         make(map[groupKey]*group),
		flows:          make(map[flowKey]*edgeFlow),
		sourceFactors:  make(map[plan.OpID]*trace.Trace),
		stragglers:     make(map[groupKey]float64),
		siteDown:       make([]bool, top.N()),
		siteStrag:      make([]float64, top.N()),
		workloadFactor: trace.Constant(1),
	}
	for i := range e.siteStrag {
		e.siteStrag[i] = 1
	}
	return e
}

// SetObserver wires the engine's telemetry and event tracing to an
// observer. Pass before Start; a nil observer (the default) keeps every
// instrumentation point a no-op on the hot path.
func (e *Engine) SetObserver(o *obs.Observer) {
	e.obs = o
	if o == nil {
		e.tel = engineTel{}
		return
	}
	r := o.Registry()
	r.Describe("wasp_events_processed_total", "Events processed, per operator.")
	r.Describe("wasp_events_emitted_total", "Events emitted downstream, per operator.")
	r.Describe("wasp_events_dropped_total", "Events shed by the Degrade policy, per operator.")
	r.Describe("wasp_events_generated_total", "External events generated, per source operator.")
	r.Describe("wasp_input_queue_events", "Events waiting in input queues at sample time, per operator.")
	r.Describe("wasp_send_queue_events", "Events waiting in outbound send queues at sample time, per operator.")
	r.Describe("wasp_operator_tasks", "Current parallelism, per operator.")
	r.Describe("wasp_backpressure_onsets_total", "Backpressure onset transitions, per operator.")
	r.Describe("wasp_sink_delay_seconds", "End-to-end delay of sink deliveries.")
	r.Describe("wasp_migration_bytes_total", "State bytes scheduled for migration.")
	r.Describe("wasp_migration_seconds", "Wall (virtual) duration of stage reconfigurations.")
	r.Describe("wasp_reconfigurations_total", "Stage reconfigurations started.")
	r.Describe("wasp_replans_total", "Plan switches completed.")
	r.Describe("wasp_failures_total", "Full-outage failures injected.")
	r.Describe("wasp_site_crashes_total", "Site crashes injected.")
	r.Describe("wasp_adapt_latency_seconds", "Virtual-clock duration of one adaptation phase (detect/plan/halt/transfer/resume), by phase.")
	e.tel = engineTel{
		sinkDelay:  r.Histogram("wasp_sink_delay_seconds", []float64{0.5, 1, 2, 5, 10, 20, 40, 80, 160, 320}),
		migBytes:   r.Counter("wasp_migration_bytes_total"),
		migSeconds: r.Histogram("wasp_migration_seconds", []float64{1, 2, 5, 10, 20, 30, 60, 120, 300}),
		reconfigs:  r.Counter("wasp_reconfigurations_total"),
		replans:    r.Counter("wasp_replans_total"),
		failures:   r.Counter("wasp_failures_total"),
	}
}

// Plan returns the currently deployed physical plan (nil before Deploy).
func (e *Engine) Plan() *physical.Plan { return e.plan }

// Now returns the current virtual time.
func (e *Engine) Now() vclock.Time { return e.sched.Now() }

// SetWorkloadFactor installs a global source-rate factor trace (scripted
// workload dynamics).
func (e *Engine) SetWorkloadFactor(tr *trace.Trace) {
	if tr == nil {
		tr = trace.Constant(1)
	}
	e.workloadFactor = tr
}

// SetSourceFactor installs a per-source rate factor trace, multiplied with
// the global factor.
func (e *Engine) SetSourceFactor(op plan.OpID, tr *trace.Trace) {
	e.sourceFactors[op] = tr
}

// InjectStraggler degrades the processing capacity of an operator's tasks
// at one site to the given factor (0 < factor ≤ 1) — the slow-node
// dynamic of §1. Factor 1 (or ≥1) clears the straggler.
func (e *Engine) InjectStraggler(op plan.OpID, site topology.SiteID, factor float64) {
	key := groupKey{op: op, site: site}
	if factor >= 1 || factor <= 0 {
		delete(e.stragglers, key)
		return
	}
	e.stragglers[key] = factor
}

// stragglerFactor returns the capacity factor for a group (1 = healthy):
// the per-(op,site) straggler multiplied by the site-wide one. The map
// probe is skipped entirely while no per-operator straggler is injected —
// the common case on the tick hot path.
//
//waspvet:hotpath
func (e *Engine) stragglerFactor(g *group) float64 {
	f := e.siteStrag[g.site]
	if len(e.stragglers) != 0 {
		if v, ok := e.stragglers[groupKey{op: g.op.ID, site: g.site}]; ok {
			f = v * f
		}
	}
	return f
}

// Deploy installs a validated physical plan, building task groups and
// inter-site flows. Deploy may only be called once; use ReplacePlan for
// plan switches.
func (e *Engine) Deploy(p *physical.Plan) error {
	if e.plan != nil {
		return errors.New("engine: already deployed; use BeginReplan")
	}
	if err := p.Validate(e.top); err != nil {
		return err
	}
	e.plan = p
	e.buildGroups()
	e.rebuildFlows()
	e.refreshGoodputModel()
	return nil
}

// refreshGoodputModel recomputes the set of ingest operators (direct
// source consumers) used by the goodput counters. Called whenever the
// plan (graph) changes. group.front and fSrcFront cache frontOps
// membership at wiring rebuild, so recomputing it must invalidate the
// topo caches — every current caller happens to have set topoDirty
// already, but the invalidation belongs with the mutation (caught by
// waspvet's genbump check).
func (e *Engine) refreshGoodputModel() {
	e.frontOps = make(map[plan.OpID]bool)
	g := e.plan.Graph
	for _, id := range g.Sources() {
		for _, d := range g.Downstream(id) {
			e.frontOps[d] = true
		}
	}
	e.topoDirty = true
}

// Start begins the tick loop on the scheduler.
func (e *Engine) Start() {
	if e.ticker != nil {
		return
	}
	e.lastNow = e.sched.Now()
	e.ticker = e.sched.Every(e.cfg.Tick, e.tick)
}

// Stop halts the tick loop.
func (e *Engine) Stop() {
	if e.ticker != nil {
		e.ticker.Cancel()
		e.ticker = nil
	}
}

// buildGroups constructs task groups for the current plan, preserving
// nothing (fresh deployment).
func (e *Engine) buildGroups() {
	e.groups = make(map[groupKey]*group)
	e.topoDirty = true
	for _, id := range detutil.SortedKeys(e.plan.Stages) {
		st := e.plan.Stages[id]
		for _, site := range st.DistinctSites() {
			n := 0
			for _, s := range st.Sites {
				if s == site {
					n++
				}
			}
			e.addGroup(id, site, n)
		}
	}
}

func (e *Engine) addGroup(id plan.OpID, site topology.SiteID, tasks int) *group {
	g := &group{op: e.plan.Graph.Operator(id), site: site, tasks: tasks}
	if g.op.Window > 0 {
		g.windowed = true
	}
	g.cap = g.capacity(e.cfg.SlotRate)
	g.bpLimit = g.cap * e.cfg.BackpressureSec
	g.isSink = g.op.Kind == plan.KindSink
	g.sigma = g.op.Selectivity
	if g.op.Kind == plan.KindSource {
		g.sigma = 1
	}
	// front is best-effort here (frontOps may not be computed yet during
	// Deploy); the wiring rebuild that precedes any hot-path use refreshes
	// it. Setting it now keeps groups created mid-tick by finalizeReconfig
	// correct for a fan-out in the same tick (the graph is unchanged
	// there, so frontOps is current).
	g.front = e.frontOps[g.op.ID]
	e.groups[groupKey{op: id, site: site}] = g
	e.topoDirty = true
	return g
}

// opGroups returns the groups of one operator, ascending by site.
//
//waspvet:ordered ascending site index, stable across runs
func (e *Engine) opGroups(id plan.OpID) []*group {
	var out []*group
	for s := 0; s < e.top.N(); s++ {
		if g, ok := e.groups[groupKey{op: id, site: topology.SiteID(s)}]; ok {
			out = append(out, g)
		}
	}
	return out
}

// tickCount counts every simulation tick executed process-wide, across
// all engines (experiment grids run many engines, possibly concurrently).
// The waspbench -bench-json harness divides wall time and memory deltas by
// the delta of this counter to report per-tick costs of a whole grid.
var tickCount atomic.Int64

// TickCount returns the number of simulation ticks executed by all engines
// in this process since start.
func TickCount() int64 { return tickCount.Load() }

// Ticks returns the number of simulation ticks this engine has executed.
// Unlike the process-wide TickCount, it never conflates engines running
// concurrently under the experiment pool.
func (e *Engine) Ticks() int64 { return e.ticks.Load() }

// tick advances the simulation by one step ending at `now`.
//
//waspvet:hotpath
func (e *Engine) tick(now vclock.Time) {
	dt := now - e.lastNow
	if dt <= 0 {
		return
	}
	tickCount.Add(1)
	e.ticks.Add(1)
	e.lastNow = now
	dtSec := time.Duration(dt).Seconds()
	failed := now <= e.failedUntil

	// 0. Refresh the columnar wiring and, when the network reports a
	// latency-affecting change (link fault set/cleared), re-sample each
	// flow's cached link latency.
	e.ensureWiring() //waspvet:hotalloc amortized cold rebuild; no-op unless wiring generation moved
	if lg := e.net.LatencyGen(); lg != e.latGen {
		e.latGen = lg
		for i, f := range e.flowList {
			f.latency = vclock.Time(e.net.Latency(f.key.fromSite, f.key.toSite))
			e.fLatency[i] = f.latency
		}
	}

	// 1. Set flow demands from send queues and destination backpressure —
	// a linear sweep over the flow columns. Flows touching a crashed site
	// carry nothing: a dead sender has no queue left, and a dead receiver
	// holds the sender's queue in place (backpressure) until the
	// controller re-homes it. A nil destination group means the
	// destination disappeared mid-reconfiguration: throttled.
	flows := e.flowList
	for i, f := range flows {
		nf := e.fNet[i]
		if nf == nil {
			continue
		}
		if failed || e.siteDown[e.fFromSite[i]] ||
			e.siteDown[e.fToSite[i]] || e.fDst[i] == nil || e.queueFull(e.fDst[i]) {
			nf.SetDemand(0)
			continue
		}
		nf.SetDemand(f.q.len() * e.fBytes[i] / dtSec)
	}

	// 2. Advance the network: fair-share allocation + bulk transfers.
	e.net.Step(now, dt)

	// 3. Deliver allocated flow volumes into destination input queues.
	if !failed {
		e.deliverFlows(flows, dtSec)
	}

	// 4. External arrivals at sources (rates evaluated at tick start).
	e.generate(now, now-dt, dtSec)

	// 5. Process groups in topological order (cached; see hotpath.go).
	e.ensureTopo() //waspvet:hotalloc amortized cold rebuild; no-op unless topoDirty
	if e.topoErr != nil {
		//waspvet:hotalloc fatal-path formatting; the panic ends the run
		panic(fmt.Sprintf("engine: invalid plan at runtime: %v", e.topoErr))
	}
	for _, groups := range e.stageGroups {
		for _, g := range groups {
			e.processGroup(g, now, dtSec, failed)
		}
	}

	// 6. Progress pending reconfigurations and re-plans.
	e.progressReconfigs(now) //waspvet:hotalloc adaptation progress; no-op when no reconfiguration is pending
	e.progressReplan(now)    //waspvet:hotalloc adaptation progress; no-op when no re-plan is pending

	// 7. Refresh backpressure flags for the next tick's demands.
	e.updateBackpressure()

	// 8. Record the tick into the flight recorder (nil = no-op).
	if e.flight != nil {
		e.recordFlight(now, dtSec) //waspvet:hotalloc flight recorder is opt-in; ring buffers are preallocated
	}
}

// sortedFlows returns the engine's flows in deterministic key order, so
// queue pushes and network allocations are replay-stable (map iteration
// order must not leak into event order). The order is cached across ticks
// and rebuilt only after the flow set changes; callers must treat the
// returned slice as read-only.
//
//waspvet:ordered canonical flowKeyLess order, cached per epoch
func (e *Engine) sortedFlows() []*edgeFlow {
	e.ensureFlows()
	return e.flowList
}

// flowKeyLess is the canonical flow ordering: by edge (from, to), then by
// site pair. Every iteration over the flow map goes through it.
func flowKeyLess(a, b flowKey) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.fromSite != b.fromSite {
		return a.fromSite < b.fromSite
	}
	return a.toSite < b.toSite
}

// groupKeyLess is the canonical group ordering: by operator, then site.
func groupKeyLess(a, b groupKey) bool {
	if a.op != b.op {
		return a.op < b.op
	}
	return a.site < b.site
}

// queueFull applies the backpressure bound: a queue is full when it holds
// more than BackpressureSec seconds of work at the group's capacity
// (precomputed as bpLimit at group construction).
//
//waspvet:hotpath
func (e *Engine) queueFull(g *group) bool {
	if g.isSink {
		return false
	}
	return g.inQ.len() >= g.bpLimit
}

// deliverFlows moves each flow's granted volume from its send queue into
// the destination group, aging cohorts by the link latency. The flows
// slice is the columnar snapshot captured at tick start — nothing
// structural mutates between the demand pass and delivery.
//
//waspvet:hotpath
func (e *Engine) deliverFlows(flows []*edgeFlow, dtSec float64) {
	for i, f := range flows {
		nf := e.fNet[i]
		if nf == nil {
			continue
		}
		granted := nf.Allocated() * dtSec / e.fBytes[i]
		if granted <= 0 {
			continue
		}
		if e.siteDown[e.fFromSite[i]] || e.siteDown[e.fToSite[i]] {
			continue
		}
		dst := e.fDst[i]
		if dst == nil {
			continue
		}
		lat := e.fLatency[i]
		e.popBuf = f.q.popInto(granted, e.popBuf[:0])
		for _, c := range e.popBuf {
			dst.inQ.push(c.born-lat, c.count, c.worth, c.raw)
			dst.arrived += c.count
			if e.fSrcFront[i] {
				e.transportedSrc += c.src()
			}
		}
	}
}

// generate pushes external arrivals into source groups. Generation
// continues through failures and halts — reality does not pause — which is
// what makes backlogs accumulate.
//
//waspvet:hotpath
func (e *Engine) generate(now, start vclock.Time, dtSec float64) {
	e.ensureTopo()                     //waspvet:hotalloc amortized cold rebuild; no-op unless topoDirty
	base := e.workloadFactor.At(start) // same instant for every source
	for _, sg := range e.srcGens {
		factor := base
		if tr, ok := e.sourceFactors[sg.id]; ok {
			factor *= tr.At(start)
		}
		count := sg.op.SourceRate * factor * dtSec
		if count <= 0 {
			continue
		}
		if e.siteDown[sg.g.site] {
			// The ingest site is dead: external events keep arriving
			// (reality does not pause) but nobody is there to accept
			// them — they are lost, not queued.
			e.totalGenerated += count
			e.lostSrcEquiv += count
			continue
		}
		sg.g.inQ.push(now, count, 1, true)
		sg.g.generated += count
		e.totalGenerated += count
	}
}

// processGroup runs one task group for one tick.
//
//waspvet:hotpath
func (e *Engine) processGroup(g *group, now vclock.Time, dtSec float64, failed bool) {
	if e.siteDown[g.site] {
		return
	}
	if g.isSink {
		// Sinks consume instantly; record delivery delay. Deliveries are
		// weighted by source-equivalents so that delay statistics weight
		// every source event fairly, regardless of how much aggregation
		// compressed its branch.
		e.popBuf = g.inQ.popAllInto(e.popBuf[:0])
		for _, c := range e.popBuf {
			delay := now - c.born
			e.sinkArrived += c.count
			e.sinkDelaySum += delay.Seconds() * c.count
			e.totalDelivered += c.count
			e.deliveredSrcEquiv += c.src()
			g.processed += c.count
			e.deliveries = append(e.deliveries, SinkDelivery{At: now, Delay: delay, Count: c.src()})
			e.tel.sinkDelay.Observe(delay.Seconds())
		}
		return
	}
	if failed || g.suspended() {
		return
	}

	budget := g.cap * e.stragglerFactor(g) * dtSec
	if budget <= 0 {
		return
	}
	// Degrade policy: shed events older than the SLO before spending
	// budget on them.
	if e.cfg.DropLate {
		for {
			born, ok := g.inQ.oldestBorn()
			if !ok || now-born <= e.failSafeSLO() {
				break
			}
			if !g.inQ.items[g.inQ.head].raw {
				break // never shed partial aggregation results
			}
			c, ok := g.inQ.popHead()
			if !ok {
				break
			}
			g.dropped += c.count
			e.totalDropped += c.count
			e.droppedSrcEquiv += c.src()
			if !g.front {
				e.droppedBeyondSrc += c.src()
			}
		}
	}

	sigma := g.sigma

	// Downstream fan-out is blocked while any send queue is full: the
	// group stops processing (backpressure propagates upstream).
	if e.sendBlocked(g) {
		g.backpressured = true
		return
	}

	e.popBuf = g.inQ.popInto(budget, e.popBuf[:0])
	for _, c := range e.popBuf {
		g.processed += c.count
		if c.born > g.maxProcessedBorn {
			g.maxProcessedBorn = c.born
		}
		out := c.count * sigma
		if out <= 0 {
			continue
		}
		outWorth := c.worth / sigma
		outRaw := c.raw
		if g.windowed {
			start := windowStart(c.born, g.op.Window)
			w := g.winAt(start)
			w.count += out
			w.srcTotal += out * outWorth
			if c.born > w.maxBorn {
				w.maxBorn = c.born
			}
			continue
		}
		g.emitted += out
		e.fanOut(g, c.born, out, outWorth, outRaw)
	}

	// Fire completed windows.
	if g.windowed {
		e.fireWindows(g, now)
	}
}

// failSafeSLO returns the Degrade SLO.
//
//waspvet:hotpath
func (e *Engine) failSafeSLO() vclock.Time { return vclock.Time(e.cfg.SLO) }

// fireWindows emits every buffered window whose end has passed on the
// virtual clock. Tumbling windows are aligned across the distributed
// partial-aggregation tree, so every level fires at the boundary rather
// than waiting a further window for downstream watermarks; events that
// arrive for an already-fired window (late, e.g. during backlog) re-open
// it and fire on the next tick, which conserves counts and attributes the
// lateness to the emitted cohort (its born time stays the window's max
// event time, the paper's §8.3 convention).
//
//waspvet:hotpath
func (e *Engine) fireWindows(g *group, now vclock.Time) {
	fired := 0
	for i := range g.windows {
		w := &g.windows[i]
		if w.start+vclock.Time(g.op.Window) > now {
			// Starts ascend and the window size is constant per group, so
			// the first not-yet-due window implies the rest are not due.
			break
		}
		g.emitted += w.count
		e.fanOut(g, w.maxBorn, w.count, w.srcTotal/w.count, false)
		fired++
	}
	if fired > 0 {
		g.windows = g.windows[:copy(g.windows, g.windows[fired:])]
	}
}

// winAt returns the accumulator for the window starting at `start`,
// inserting a fresh slot in sorted position if absent. The returned
// pointer is valid until the next insert. Steady-state inserts hit the
// last slot (the current window) without searching or allocating.
//
//waspvet:hotpath
func (g *group) winAt(start vclock.Time) *winAcc {
	n := len(g.windows)
	if n > 0 && g.windows[n-1].start == start {
		return &g.windows[n-1].winAcc
	}
	if n == 0 || g.windows[n-1].start < start {
		g.windows = append(g.windows, winSlot{start: start})
		return &g.windows[len(g.windows)-1].winAcc
	}
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if g.windows[mid].start < start {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if g.windows[lo].start == start {
		return &g.windows[lo].winAcc
	}
	g.windows = append(g.windows, winSlot{})
	copy(g.windows[lo+1:], g.windows[lo:])
	g.windows[lo] = winSlot{start: start}
	return &g.windows[lo].winAcc
}

// windowStart mirrors stream.windowStart for the fluid model.
//
//waspvet:hotpath
func windowStart(t vclock.Time, size time.Duration) vclock.Time {
	if size <= 0 {
		return t
	}
	return (t / vclock.Time(size)) * vclock.Time(size)
}

// fanOut distributes `count` output events born at `born`, each worth
// `worth` source equivalents (raw or partial-result), to every downstream
// operator, splitting across its sites by task share.
//
//waspvet:hotpath
func (e *Engine) fanOut(g *group, born vclock.Time, count, worth float64, raw bool) {
	e.ensureTopo() //waspvet:hotalloc amortized cold rebuild; no-op unless topoDirty
	if g.fanGen != e.topoGen {
		g.fan, g.fanGen = e.fanPlans[g.op.ID], e.topoGen
	}
	for _, ft := range g.fan {
		for si := range ft.sites {
			fs := &ft.sites[si]
			n := count * fs.share
			if n <= 0 {
				continue
			}
			if fs.site == g.site {
				dst := fs.dst
				if dst == nil {
					// The destination group vanished (crash teardown racing
					// a window fire): the events die with it.
					e.lostSrcEquiv += n * worth
					continue
				}
				dst.inQ.push(born, n, worth, raw)
				dst.arrived += n
				if g.front {
					e.transportedSrc += n * worth
				}
				continue
			}
			var f *edgeFlow
			if fs.flowEpoch == e.flowsEpoch && int(g.site) < len(fs.flowBySrc) {
				f = fs.flowBySrc[g.site]
			}
			if f == nil {
				f = e.flows[flowKey{from: g.op.ID, to: ft.down, fromSite: g.site, toSite: fs.site}]
				if f == nil {
					//waspvet:hotalloc cold branch: first event on a new (edge, site-pair); flow persists across ticks
					f = e.addFlow(g.op.ID, ft.down, g.site, fs.site) // bumps flowsEpoch
				}
				if fs.flowEpoch != e.flowsEpoch || fs.flowBySrc == nil {
					if cap(fs.flowBySrc) < len(e.siteDown) {
						//waspvet:hotalloc cold branch: per-sender flow cache grows once per topology size
						fs.flowBySrc = make([]*edgeFlow, len(e.siteDown))
					} else {
						fs.flowBySrc = fs.flowBySrc[:len(e.siteDown)]
						clear(fs.flowBySrc)
					}
					fs.flowEpoch = e.flowsEpoch
				}
				if int(g.site) < len(fs.flowBySrc) {
					fs.flowBySrc[g.site] = f
				}
			}
			f.q.push(born, n, worth, raw)
		}
	}
}

// sendBlocked reports whether any of the group's send queues is over the
// backpressure bound (measured in seconds of transmission at current link
// capacity). ensureWiring runs first so flows added earlier in the same
// tick (fan-out to a new site pair) are visible, exactly as the map-backed
// index behaved.
//
//waspvet:hotpath
func (e *Engine) sendBlocked(g *group) bool {
	e.ensureWiring() //waspvet:hotalloc amortized cold rebuild; no-op unless wiring generation moved
	for _, f := range g.out {
		linkCap := e.linkCap(f.linkID)
		if linkCap <= 0 {
			if !f.q.empty() {
				return true
			}
			continue
		}
		secondsQueued := f.q.len() * f.eventBytes / linkCap
		if secondsQueued >= e.cfg.BackpressureSec {
			return true
		}
	}
	return false
}

// linkCap returns the capacity of the dense link id at the current tick,
// recomputing the per-tick cache when the (time, wiring, fault) stamp
// moved. Capacity at a fixed instant changes only through link faults
// (tracked by net.LatencyGen) — traces are pure functions of time — so
// the stamp is exact.
//
//waspvet:hotpath
func (e *Engine) linkCap(id int32) float64 {
	if !e.capsValid || e.capsAt != e.lastNow || e.capsGen != e.wiringGen || e.capsFault != e.net.LatencyGen() {
		e.capsValid = true
		e.capsAt = e.lastNow
		e.capsGen = e.wiringGen
		e.capsFault = e.net.LatencyGen()
		for i, p := range e.linkPairs {
			e.linkCaps[i] = e.net.Capacity(p.from, p.to, e.lastNow)
		}
	}
	return e.linkCaps[id]
}

// updateBackpressure refreshes each group's backpressure flag: a group is
// backpressured when its input queue or any of its send queues is at the
// bound, so next tick's flow demands and processing observe it. With an
// observer attached, groups are visited in deterministic order and each
// false→true transition emits a backpressure.onset event.
//
//waspvet:hotpath
func (e *Engine) updateBackpressure() {
	if e.obs == nil {
		e.ensureWiring() //waspvet:hotalloc amortized cold rebuild; no-op unless wiring generation moved
		for _, g := range e.groupList {
			if e.queueFull(g) || e.sendBlocked(g) {
				g.backpressured = true
			}
		}
		return
	}
	e.ensureTopo() //waspvet:hotalloc amortized cold rebuild; no-op unless topoDirty
	if e.topoErr != nil {
		return
	}
	for _, groups := range e.stageGroups {
		for _, g := range groups {
			bp := e.queueFull(g) || e.sendBlocked(g)
			if bp {
				g.backpressured = true
			}
			if bp && !g.bpActive {
				//waspvet:hotalloc observer-gated edge-transition event, not per-tick steady state
				e.obs.Emit("backpressure.onset",
					obs.Int("op", int(g.op.ID)), obs.Int("site", int(g.site)),
					obs.F64("input_queue", g.inQ.len()))
				//waspvet:hotalloc observer-gated edge-transition telemetry, not per-tick steady state
				e.obs.Registry().Counter("wasp_backpressure_onsets_total", "op", opLabel(g.op.ID)).Inc()
			}
			g.bpActive = bp
		}
	}
}

// opLabel renders an operator ID as a metric label value.
func opLabel(id plan.OpID) string { return fmt.Sprintf("%d", int(id)) }

func countSites(sites []topology.SiteID, s topology.SiteID) int {
	n := 0
	for _, x := range sites {
		if x == s {
			n++
		}
	}
	return n
}
