package engine

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// rig bundles a 3-site test substrate plus a deployed engine.
type rig struct {
	top   *topology.Topology
	net   *netsim.Network
	sched *vclock.Scheduler
	eng   *Engine
	g     *plan.Graph
	ids   []plan.OpID
	pp    *physical.Plan
}

// threeSites builds sites 0,1,2 (8 slots each): links linkMbps in all
// directions, 1 ms intra, 40 ms inter latency.
func threeSites(t *testing.T, linkMbps topology.Mbps) *topology.Topology {
	t.Helper()
	const n = 3
	sites := make([]topology.Site, n)
	lat := make([][]time.Duration, n)
	bw := make([][]topology.Mbps, n)
	for i := 0; i < n; i++ {
		sites[i] = topology.Site{ID: topology.SiteID(i), Name: "s", Kind: topology.DataCenter, Slots: 8}
		lat[i] = make([]time.Duration, n)
		bw[i] = make([]topology.Mbps, n)
		for j := 0; j < n; j++ {
			if i == j {
				bw[i][j] = 100000
				lat[i][j] = time.Millisecond
				continue
			}
			bw[i][j] = linkMbps
			lat[i][j] = 40 * time.Millisecond
		}
	}
	top, err := topology.New(sites, lat, bw)
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// pipelineRig deploys src(site0, rate ev/s, 100B events) → map(σ=1, site1)
// → sink(site1).
func pipelineRig(t *testing.T, cfg Config, linkMbps topology.Mbps, rate float64) *rig {
	t.Helper()
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: rate,
	})
	mp := g.AddOperator(plan.Operator{
		Name: "map", Kind: plan.KindMap, Splittable: true,
		Selectivity: 1, OutEventBytes: 100, CostPerEvent: 1,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 1})
	g.MustConnect(src, mp)
	g.MustConnect(mp, snk)

	top := threeSites(t, linkMbps)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := New(cfg, top, net, sched)

	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	// Place the map at site 1 explicitly for a deterministic layout.
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[mp].Sites = []topology.SiteID{1}
	pp.Stages[snk].Sites = []topology.SiteID{1}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return &rig{top: top, net: net, sched: sched, eng: eng, g: g, ids: []plan.OpID{src, mp, snk}, pp: pp}
}

func (r *rig) run(t *testing.T, until time.Duration) {
	t.Helper()
	if err := r.sched.RunUntil(vclock.Time(until)); err != nil {
		t.Fatal(err)
	}
}

// meanDelayAfter averages sink delivery delays at or after `from`.
func meanDelayAfter(ds []SinkDelivery, from vclock.Time) float64 {
	var sum, n float64
	for _, d := range ds {
		if d.At >= from {
			sum += d.Delay.Seconds() * d.Count
			n += d.Count
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / n
}

func TestSteadyStateLowDelayAndConservation(t *testing.T) {
	// 10000 ev/s × 100 B = 1 MB/s over an 80 Mbps (10 MB/s) link: healthy.
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 60*time.Second)
	// Stop the workload and drain.
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 70*time.Second)

	generated, delivered, dropped := r.eng.Totals()
	if dropped != 0 {
		t.Fatalf("dropped = %v, want 0", dropped)
	}
	if math.Abs(generated-600000) > 1 {
		t.Fatalf("generated = %v, want 600000", generated)
	}
	if math.Abs(delivered-generated) > 1 {
		t.Fatalf("delivered = %v, want %v (conservation)", delivered, generated)
	}
	ds := r.eng.TakeDeliveries()
	delay := meanDelayAfter(ds, vclock.Time(10*time.Second))
	// One WAN hop at 250 ms ticks: delay should be ~0.3-1 s.
	if delay > 1.5 {
		t.Fatalf("steady-state delay = %vs, want < 1.5s", delay)
	}
}

func TestNetworkBottleneckGrowsDelay(t *testing.T) {
	// 40000 ev/s × 100 B = 4 MB/s over a 8 Mbps (1 MB/s) link: 4× over.
	r := pipelineRig(t, Config{}, 8, 40000)
	r.run(t, 120*time.Second)
	ds := r.eng.TakeDeliveries()
	early := meanDelayAfter(ds[:len(ds)/4], 0)
	late := meanDelayAfter(ds[len(ds)*3/4:], 0)
	if !(late > early*2) {
		t.Fatalf("delay did not grow under bottleneck: early %v late %v", early, late)
	}
	// The source must be backpressured (send queue to the dead link full)
	// and the map's arrival rate capped by the link: 1 MB/s = 10000 ev/s.
	snap := r.eng.Sample()
	mp := snap.Ops[r.ids[1]]
	if mp.ArrivalRate > 12000 {
		t.Fatalf("map arrival rate %v above link capacity", mp.ArrivalRate)
	}
	src := snap.Ops[r.ids[0]]
	if !src.Backpressure {
		t.Fatal("source not backpressured under network bottleneck")
	}
}

func TestComputeBottleneck(t *testing.T) {
	// Default SlotRate 25000 but the map costs 5 units/event: its single
	// task handles 5000 ev/s against a 20000 ev/s stream (4× overloaded);
	// plenty of bandwidth, and the source (cost 1) keeps up fine.
	r := pipelineRig(t, Config{}, 800, 20000)
	r.g.Operator(r.ids[1]).CostPerEvent = 5
	r.run(t, 60*time.Second)
	snap := r.eng.Sample()
	mp := snap.Ops[r.ids[1]]
	if mp.ProcessingRate > 5500 {
		t.Fatalf("map processing rate %v above slot capacity 5000", mp.ProcessingRate)
	}
	if mp.QueueLen <= 0 && !mp.Backpressure {
		t.Fatal("no queueing or backpressure under compute bottleneck")
	}
	ds := r.eng.TakeDeliveries()
	late := meanDelayAfter(ds[len(ds)*3/4:], 0)
	if late < 2 {
		t.Fatalf("late delay %v too small for a 4x compute bottleneck", late)
	}
}

func TestDegradeBoundsDelayByDroppingEvents(t *testing.T) {
	r := pipelineRig(t, Config{DropLate: true, SLO: 10 * time.Second}, 8, 40000)
	r.run(t, 300*time.Second)
	ds := r.eng.TakeDeliveries()
	late := meanDelayAfter(ds[len(ds)*3/4:], 0)
	if late > 13 {
		t.Fatalf("Degrade delay %v exceeds SLO band", late)
	}
	_, _, dropped := r.eng.Totals()
	if dropped <= 0 {
		t.Fatal("Degrade dropped nothing under a 4x bottleneck")
	}
}

func TestWorkloadFactorTrace(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.eng.SetWorkloadFactor(trace.Steps(30*time.Second, 1, 2))
	r.run(t, 60*time.Second)
	generated, _, _ := r.eng.Totals()
	// 30s × 10000 + 30s × 20000 = 900000.
	if math.Abs(generated-900000) > 1 {
		t.Fatalf("generated = %v, want 900000", generated)
	}
}

func TestWindowedOperatorHoldsAndConserves(t *testing.T) {
	g := plan.NewGraph()
	src := g.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 1000,
	})
	agg := g.AddOperator(plan.Operator{
		Name: "agg", Kind: plan.KindAggregate, Stateful: true, Splittable: true,
		Selectivity: 0.01, OutEventBytes: 200, CostPerEvent: 1,
		Window: 10 * time.Second,
	})
	snk := g.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 0})
	g.MustConnect(src, agg)
	g.MustConnect(agg, snk)

	top := threeSites(t, 800)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := New(Config{}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[src].Sites = []topology.SiteID{0}
	pp.Stages[agg].Sites = []topology.SiteID{0}
	pp.Stages[snk].Sites = []topology.SiteID{0}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	if err := sched.RunUntil(vclock.Time(65 * time.Second)); err != nil {
		t.Fatal(err)
	}
	_, delivered, _ := eng.Totals()
	// 6 windows complete by t=65 (the 6th fires when an event with
	// born >= 60s is processed): 10000 events × 0.01 per window.
	want := 6 * 10000 * 0.01
	if math.Abs(delivered-want) > 20 {
		t.Fatalf("delivered = %v, want ~%v", delivered, want)
	}
	// Delay at sink: window hold means event time (max born in window) is
	// close to firing time: small delay.
	ds := eng.TakeDeliveries()
	if d := meanDelayAfter(ds, 0); d > 2 {
		t.Fatalf("windowed delay = %v, want < 2s", d)
	}
}

func TestReconfigureMigratesAndResumes(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 30*time.Second)

	// Move the map from site 1 to site 2 with 30 MB of state over a
	// 10 MB/s link: 3 s transition.
	var doneAt vclock.Time
	err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 30e6}},
		func(now vclock.Time) { doneAt = now })
	if err != nil {
		t.Fatal(err)
	}
	if !r.eng.Reconfiguring(r.ids[1]) {
		t.Fatal("Reconfiguring = false during migration")
	}
	r.run(t, 60*time.Second)
	if doneAt == 0 {
		t.Fatal("reconfiguration never completed")
	}
	// Transfer shares the link with the data stream (1 MB/s demand), so
	// the 30 MB takes a bit over 3 s.
	transition := time.Duration(doneAt) - 30*time.Second
	if transition < 3*time.Second || transition > 10*time.Second {
		t.Fatalf("transition took %v, want ~3-10 s", transition)
	}
	if got := r.eng.Plan().Stages[r.ids[1]].Sites[0]; got != 2 {
		t.Fatalf("map now at site %v, want 2", got)
	}
	// Drain and check conservation across the migration.
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 120*time.Second)
	generated, delivered, _ := r.eng.Totals()
	if math.Abs(delivered-generated) > 1 {
		t.Fatalf("conservation violated across migration: %v vs %v", delivered, generated)
	}
}

func TestReconfigureScaleOut(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 10*time.Second)
	err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{1, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.run(t, 20*time.Second)
	if got := r.eng.Parallelism(r.ids[1]); got != 2 {
		t.Fatalf("parallelism = %d, want 2", got)
	}
	// Both sites now receive half the stream each.
	r.eng.Sample() // reset counters
	r.run(t, 40*time.Second)
	snap := r.eng.Sample()
	mp := snap.Ops[r.ids[1]]
	if math.Abs(mp.ProcessingRate-10000) > 1500 {
		t.Fatalf("scaled-out processing rate = %v, want ~10000", mp.ProcessingRate)
	}
}

func TestFailureAccumulatesBacklogAndRecovers(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.run(t, 30*time.Second)
	r.eng.Fail(vclock.Time(60 * time.Second))
	if !r.eng.Failed() {
		t.Fatal("Failed = false during outage")
	}
	r.run(t, 60*time.Second) // mid-outage
	if _, ok := r.eng.OldestQueuedBorn(); !ok {
		t.Fatal("no backlog during outage")
	}
	r.run(t, 92*time.Second)
	if r.eng.Failed() {
		t.Fatal("Failed = true after outage")
	}
	// Ample capacity: backlog drains; delay spikes then falls.
	r.run(t, 400*time.Second)
	ds := r.eng.TakeDeliveries()
	spike := meanDelayAfter(ds, vclock.Time(91*time.Second))
	lateDs := meanDelayAfter(ds, vclock.Time(350*time.Second))
	if !(spike > 5) {
		t.Fatalf("post-failure delay %v shows no backlog spike", spike)
	}
	if !(lateDs < 2) {
		t.Fatalf("delay %v did not recover after drain", lateDs)
	}
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 460*time.Second)
	generated, delivered, _ := r.eng.Totals()
	if math.Abs(delivered-generated) > 1 {
		t.Fatalf("failure lost events: delivered %v of %v", delivered, generated)
	}
}

func TestBeginReplanSwitchesPlanWithoutLoss(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 20*time.Second)

	// New plan: same logical shape, map relocated to site 2.
	g2 := plan.NewGraph()
	src2 := g2.AddOperator(plan.Operator{
		Name: "src", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 10000,
	})
	mp2 := g2.AddOperator(plan.Operator{
		Name: "map", Kind: plan.KindMap, Splittable: true,
		Selectivity: 1, OutEventBytes: 100, CostPerEvent: 1,
	})
	snk2 := g2.AddOperator(plan.Operator{Name: "sink", Kind: plan.KindSink, PinnedSite: 1})
	g2.MustConnect(src2, mp2)
	g2.MustConnect(mp2, snk2)
	pp2, err := physical.FromLogical(g2)
	if err != nil {
		t.Fatal(err)
	}
	pp2.Stages[src2].Sites = []topology.SiteID{0}
	pp2.Stages[mp2].Sites = []topology.SiteID{2}
	pp2.Stages[snk2].Sites = []topology.SiteID{1}

	var doneAt vclock.Time
	carry := map[plan.OpID]plan.OpID{r.ids[0]: src2, r.ids[2]: snk2}
	if err := r.eng.BeginReplan(pp2, carry, func(now vclock.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	if !r.eng.Replanning() {
		t.Fatal("Replanning = false")
	}
	r.run(t, 60*time.Second)
	if doneAt == 0 {
		t.Fatal("re-plan never completed")
	}
	if r.eng.Replanning() {
		t.Fatal("Replanning still true")
	}
	if got := r.eng.Plan().Stages[mp2].Sites[0]; got != 2 {
		t.Fatalf("new map at site %v, want 2", got)
	}
	// Conservation across the switch.
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 150*time.Second)
	generated, delivered, _ := r.eng.Totals()
	if math.Abs(delivered-generated) > 1 {
		t.Fatalf("re-plan lost events: delivered %v of %v", delivered, generated)
	}
}

func TestSampleRates(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.run(t, 10*time.Second)
	r.eng.Sample() // reset
	r.run(t, 50*time.Second)
	snap := r.eng.Sample()
	src := snap.Ops[r.ids[0]]
	if math.Abs(src.SourceRate-10000) > 100 {
		t.Fatalf("source rate = %v, want ~10000", src.SourceRate)
	}
	mp := snap.Ops[r.ids[1]]
	if math.Abs(mp.ProcessingRate-10000) > 500 {
		t.Fatalf("map processing rate = %v, want ~10000", mp.ProcessingRate)
	}
	if mp.Tasks != 1 {
		t.Fatalf("map Tasks = %d, want 1", mp.Tasks)
	}
	if snap.At != vclock.Time(50*time.Second) {
		t.Fatalf("snapshot At = %v", snap.At)
	}
}

func TestHaltResume(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.run(t, 10*time.Second)
	r.eng.Halt(r.ids[1])
	r.eng.Sample()
	r.run(t, 20*time.Second)
	snap := r.eng.Sample()
	if snap.Ops[r.ids[1]].ProcessingRate != 0 {
		t.Fatal("halted stage processed events")
	}
	if r.eng.QueueLen(r.ids[1]) <= 0 {
		t.Fatal("no queue at halted stage")
	}
	r.eng.Resume(r.ids[1])
	r.run(t, 40*time.Second)
	snap = r.eng.Sample()
	if snap.Ops[r.ids[1]].ProcessingRate <= 0 {
		t.Fatal("resumed stage idle")
	}
}

func TestStateBytesAt(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.eng.Plan().Stages[r.ids[1]].Op.StateBytes = 100e6
	if got := r.eng.StateBytesAt(r.ids[1], 1); got != 100e6 {
		t.Fatalf("StateBytesAt = %v, want 1e8", got)
	}
	if got := r.eng.StateBytesAt(r.ids[1], 0); got != 0 {
		t.Fatalf("StateBytesAt(no tasks) = %v, want 0", got)
	}
	// Split across two sites.
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{1, 2}, nil, nil); err != nil {
		t.Fatal(err)
	}
	r.run(t, 5*time.Second)
	if got := r.eng.StateBytesAt(r.ids[1], 1); got != 50e6 {
		t.Fatalf("split StateBytesAt = %v, want 5e7", got)
	}
}

func TestFreeSlots(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	free := r.eng.FreeSlots()
	if free[0] != 7 || free[1] != 6 || free[2] != 8 {
		t.Fatalf("FreeSlots = %v", free)
	}
}

func TestReconfigureValidation(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	if err := r.eng.Reconfigure(99, []topology.SiteID{0}, nil, nil); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if err := r.eng.Reconfigure(r.ids[1], nil, nil, nil); err == nil {
		t.Fatal("empty placement accepted")
	}
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 100e6}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{0}, nil, nil); err == nil {
		t.Fatal("double reconfiguration accepted")
	}
}

func TestBeginReplanValidation(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	bad, err := physical.FromLogical(r.g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Unplaced plan must be rejected.
	if err := r.eng.BeginReplan(bad, nil, nil); err == nil {
		t.Fatal("invalid new plan accepted")
	}
	// Carry map referencing unknown ops must be rejected.
	good := r.pp.Clone()
	if err := r.eng.BeginReplan(good, map[plan.OpID]plan.OpID{99: 0}, nil); err == nil {
		t.Fatal("bad carry source accepted")
	}
	if err := r.eng.BeginReplan(good, map[plan.OpID]plan.OpID{0: 99}, nil); err == nil {
		t.Fatal("bad carry target accepted")
	}
	if err := r.eng.BeginReplan(good, map[plan.OpID]plan.OpID{0: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.BeginReplan(good, nil, nil); err == nil {
		t.Fatal("concurrent re-plan accepted")
	}
}

func TestInjectStraggler(t *testing.T) {
	r := pipelineRig(t, Config{}, 800, 10000)
	r.run(t, 20*time.Second)
	r.eng.InjectStraggler(r.ids[1], 1, 0.25) // capacity 25000 -> 6250
	r.eng.Sample()
	r.run(t, 60*time.Second)
	snap := r.eng.Sample()
	if got := snap.Ops[r.ids[1]].ProcessingRate; got > 7000 {
		t.Fatalf("straggled rate = %v, want <= 6250-ish", got)
	}
	r.eng.InjectStraggler(r.ids[1], 1, 1) // clear
	r.run(t, 200*time.Second)             // drain backlog
	r.eng.Sample()
	r.run(t, 230*time.Second)
	snap = r.eng.Sample()
	if got := snap.Ops[r.ids[1]].ProcessingRate; math.Abs(got-10000) > 1000 {
		t.Fatalf("post-straggler rate = %v, want ~10000", got)
	}
}

func TestDeployTwiceRejected(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)
	if err := r.eng.Deploy(r.pp); err == nil {
		t.Fatal("second Deploy accepted")
	}
}
