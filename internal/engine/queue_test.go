package engine

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

func at(d time.Duration) vclock.Time { return vclock.Time(d) }

func TestQueuePushPopFIFO(t *testing.T) {
	var q cohortQueue
	q.push(at(1*time.Second), 10, 1, true)
	q.push(at(2*time.Second), 20, 1, true)
	q.push(at(3*time.Second), 30, 1, true)
	if q.len() != 60 {
		t.Fatalf("len = %v", q.len())
	}
	out := q.pop(25)
	if len(out) != 2 || out[0].count != 10 || out[1].count != 15 {
		t.Fatalf("pop = %+v", out)
	}
	if out[0].born != at(1*time.Second) || out[1].born != at(2*time.Second) {
		t.Fatalf("pop order wrong: %+v", out)
	}
	if q.len() != 35 {
		t.Fatalf("remaining = %v", q.len())
	}
}

func TestQueuePartialPopPreservesWorthAndRaw(t *testing.T) {
	var q cohortQueue
	q.push(at(time.Second), 10, 3.5, false)
	out := q.pop(4)
	if len(out) != 1 || out[0].worth != 3.5 || out[0].raw != false {
		t.Fatalf("partial pop lost metadata: %+v", out)
	}
	rest := q.popAll()
	if len(rest) != 1 || rest[0].count != 6 || rest[0].worth != 3.5 {
		t.Fatalf("remainder = %+v", rest)
	}
}

func TestQueueMergeSameBornWeightedWorth(t *testing.T) {
	var q cohortQueue
	q.push(at(time.Second), 10, 1, true)
	q.push(at(time.Second), 30, 2, true)
	out := q.popAll()
	if len(out) != 1 {
		t.Fatalf("merge failed: %+v", out)
	}
	if out[0].count != 40 {
		t.Fatalf("count = %v", out[0].count)
	}
	// Weighted average worth: (10·1 + 30·2)/40 = 1.75.
	if math.Abs(out[0].worth-1.75) > 1e-12 {
		t.Fatalf("worth = %v, want 1.75", out[0].worth)
	}
}

func TestQueueNoMergeAcrossRawness(t *testing.T) {
	var q cohortQueue
	q.push(at(time.Second), 10, 1, true)
	q.push(at(time.Second), 10, 5, false)
	out := q.popAll()
	if len(out) != 2 {
		t.Fatalf("raw and non-raw merged: %+v", out)
	}
	if !out[0].raw || out[1].raw {
		t.Fatalf("raw flags wrong: %+v", out)
	}
}

func TestQueuePopHead(t *testing.T) {
	var q cohortQueue
	if _, ok := q.popHead(); ok {
		t.Fatal("popHead on empty queue")
	}
	q.push(at(time.Second), 1e-12, 7.5e14, false) // microscopic aggregate
	q.push(at(2*time.Second), 5, 1, true)
	c, ok := q.popHead()
	if !ok || c.worth != 7.5e14 {
		t.Fatalf("popHead = %+v, %v", c, ok)
	}
	if q.len() != 5 {
		t.Fatalf("len after popHead = %v", q.len())
	}
	// popHead must make progress even on sub-epsilon cohorts (the spin
	// bug the Degrade shedder once hit).
	for i := 0; i < 3; i++ {
		q.popHead()
	}
	if _, ok := q.popHead(); ok {
		t.Fatal("queue not drained")
	}
}

func TestQueueOldestBorn(t *testing.T) {
	var q cohortQueue
	if _, ok := q.oldestBorn(); ok {
		t.Fatal("oldestBorn on empty queue")
	}
	q.push(at(5*time.Second), 1, 1, true)
	q.push(at(9*time.Second), 1, 1, true)
	born, ok := q.oldestBorn()
	if !ok || born != at(5*time.Second) {
		t.Fatalf("oldestBorn = %v, %v", born, ok)
	}
}

func TestQueueCompaction(t *testing.T) {
	var q cohortQueue
	for i := 0; i < 300; i++ {
		q.push(vclock.Time(i)*vclock.Time(time.Second), 1, 1, true)
	}
	for i := 0; i < 299; i++ {
		q.pop(1)
	}
	if q.head >= len(q.items) && q.len() > 0 {
		t.Fatal("inconsistent queue after compaction")
	}
	out := q.popAll()
	if len(out) != 1 || out[0].born != vclock.Time(299)*vclock.Time(time.Second) {
		t.Fatalf("tail survived compaction wrongly: %+v", out)
	}
}

// Regression: repeated fractional pops accumulate floating-point error in
// total. On a large queue the residue can exceed the 1e-9 epsilon once
// every cohort is consumed, so empty() used to report non-empty with
// head == len(items) — and oldestBorn indexed out of range.
func TestQueueFractionalPopDrift(t *testing.T) {
	// Many small cohorts popped in uneven fractions: the additions into
	// total round differently than the mixed whole-cohort/fractional
	// subtractions out of it, so after full drainage the old code left
	// total ≈ 1.8e-7 with head == len(items). The invariant
	// total == sum(items) must be restored exactly.
	var q cohortQueue
	for i := 0; i < 5000; i++ {
		q.push(at(time.Duration(i)*time.Millisecond), 1000.1, 1, true)
	}
	for i := 1; q.head < len(q.items); i++ {
		q.pop(333.000000301 * float64(i%7+1) / 3)
	}
	if !q.empty() {
		t.Fatalf("drained queue not empty: total=%v", q.total)
	}
	if _, ok := q.oldestBorn(); ok {
		t.Fatal("oldestBorn on drained queue returned ok")
	}
	// The queue must remain usable after the resync.
	q.push(at(time.Hour), 5, 2, false)
	if q.len() != 5 {
		t.Fatalf("len after reuse = %v", q.len())
	}
	if born, ok := q.oldestBorn(); !ok || born != at(time.Hour) {
		t.Fatalf("oldestBorn after reuse = %v, %v", born, ok)
	}
}

// Property: count and source-equivalents (count×worth) are conserved by
// any sequence of pushes and pops.
func TestQueueConservationProperty(t *testing.T) {
	err := quick.Check(func(counts []uint16, popEvery uint8) bool {
		var q cohortQueue
		var pushedCount, pushedSrc float64
		var poppedCount, poppedSrc float64
		for i, c := range counts {
			count := float64(c%1000) + 1
			worth := float64(i%7) + 0.5
			q.push(vclock.Time(i)*vclock.Time(time.Millisecond), count, worth, i%2 == 0)
			pushedCount += count
			pushedSrc += count * worth
			if popEvery > 0 && i%int(popEvery%5+1) == 0 {
				for _, out := range q.pop(count / 2) {
					poppedCount += out.count
					poppedSrc += out.src()
				}
			}
		}
		for _, out := range q.popAll() {
			poppedCount += out.count
			poppedSrc += out.src()
		}
		return math.Abs(pushedCount-poppedCount) < 1e-6 &&
			math.Abs(pushedSrc-poppedSrc) < 1e-3
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
