package engine

import (
	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// addFlow registers the inter-site flow for one (edge, site-pair),
// creating its netsim flow when the pair crosses sites.
func (e *Engine) addFlow(from, to plan.OpID, fromSite, toSite topology.SiteID) *edgeFlow {
	key := flowKey{from: from, to: to, fromSite: fromSite, toSite: toSite}
	if f, ok := e.flows[key]; ok {
		return f
	}
	fromOp := e.plan.Graph.Operator(from)
	eventBytes := fromOp.OutEventBytes
	if eventBytes <= 0 {
		eventBytes = 1
	}
	f := &edgeFlow{
		key:        key,
		eventBytes: eventBytes,
		latency:    vclock.Time(e.net.Latency(fromSite, toSite)),
	}
	if fromSite != toSite {
		f.flow = e.net.AddFlow(fromSite, toSite)
	}
	e.flows[key] = f
	e.flowsDirty = true
	e.flowsEpoch++
	return f
}

// rebuildFlows reconstructs the flow set for the current plan and group
// placement, preserving queued cohorts: cohorts whose (edge, site-pair)
// still exists stay in place; cohorts on vanished pairs are re-spread
// across the edge's surviving destination sites (the relayed-events case
// the α bandwidth headroom provisions for, §4.1).
func (e *Engine) rebuildFlows() {
	old := e.flows
	e.flows = make(map[flowKey]*edgeFlow, len(old))
	e.flowsDirty = true
	e.flowsEpoch++

	// Create the flow lattice for the current placement.
	for _, from := range e.plan.Graph.OperatorIDs() {
		fromStage := e.plan.Stages[from]
		for _, to := range e.plan.Graph.Downstream(from) {
			toStage := e.plan.Stages[to]
			for _, fs := range fromStage.DistinctSites() {
				for _, ts := range toStage.DistinctSites() {
					if fs == ts {
						continue
					}
					e.addFlow(from, to, fs, ts)
				}
			}
		}
	}

	// Carry over queued cohorts (in deterministic key order) and release
	// old netsim flows. Surviving flows must all be carried BEFORE any
	// dead flow is re-homed: rehomeCohorts may push into a surviving
	// flow's queue, and a carry after that would overwrite the queue and
	// silently destroy the re-homed cohorts.
	oldKeys := detutil.SortedKeysFunc(old, flowKeyLess)
	for _, key := range oldKeys {
		of := old[key]
		if nf, ok := e.flows[key]; ok {
			nf.q = of.q
		}
		if of.flow != nil {
			e.net.RemoveFlow(of.flow)
		}
	}
	for _, key := range oldKeys {
		of := old[key]
		if _, ok := e.flows[key]; !ok && !of.q.empty() {
			e.rehomeCohorts(key, &of.q)
		}
	}
}

// rehomeCohorts redistributes a dead flow's queue. Preference order:
// surviving flows of the same edge from the same site; then the
// destination operator's input queues (split by task share); finally the
// sending group's input for reprocessing.
func (e *Engine) rehomeCohorts(key flowKey, q *cohortQueue) {
	cohorts := q.popAll()

	// Same edge, same sender site, any surviving destination (sorted by
	// destination for determinism).
	var sameSender []*edgeFlow
	for _, k := range detutil.SortedKeysFunc(e.flows, flowKeyLess) {
		if k.from == key.from && k.to == key.to && k.fromSite == key.fromSite {
			sameSender = append(sameSender, e.flows[k])
		}
	}
	if len(sameSender) > 0 {
		for _, c := range cohorts {
			per := c.count / float64(len(sameSender))
			for _, f := range sameSender {
				f.q.push(c.born, per, c.worth, c.raw)
			}
		}
		return
	}

	// Destination operator still exists somewhere: hand the cohorts to
	// its groups directly (instant handover; the dominant reconfiguration
	// cost — state migration — is modelled separately).
	if toStage, ok := e.plan.Stages[key.to]; ok && len(toStage.Sites) > 0 {
		groups := e.opGroups(key.to)
		if len(groups) > 0 {
			total := 0
			for _, g := range groups {
				total += g.tasks
			}
			for _, c := range cohorts {
				for _, g := range groups {
					share := c.count * float64(g.tasks) / float64(total)
					g.inQ.push(c.born, share, c.worth, c.raw)
					g.arrived += share
				}
			}
			return
		}
	}

	// Fall back: requeue at any group of the sending operator.
	if groups := e.opGroups(key.from); len(groups) > 0 {
		for _, c := range cohorts {
			groups[0].inQ.push(c.born, c.count, c.worth, c.raw)
		}
	}
	// Otherwise the edge vanished entirely (plan switch removed both
	// ends); cohorts were drained before the switch, so this is
	// unreachable in practice.
}
