package engine

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/vclock"
)

// TestLinkSlowShiftsDeliveryLatency is the regression test for the stale
// flow-latency bug: addFlow samples net.Latency once at flow creation, so
// without the LatencyGen-driven refresh a linkslow fault (or its heal)
// left existing flows delivering at the original latency forever. The
// 0→1 link (base 40 ms) is degraded to 25% mid-run, which inflates its
// effective latency 4× (to 160 ms); sink delivery delays must shift up by
// roughly the added 120 ms while the fault holds and return to baseline
// after the heal.
func TestLinkSlowShiftsDeliveryLatency(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 1000)

	r.run(t, 20*time.Second)
	base := meanDelayAfter(r.eng.TakeDeliveries(), vclock.Time(10*time.Second))
	if math.IsNaN(base) {
		t.Fatal("no baseline deliveries")
	}

	r.net.SetLinkFault(0, 1, 0.25)
	r.run(t, 40*time.Second)
	slowed := meanDelayAfter(r.eng.TakeDeliveries(), vclock.Time(30*time.Second))

	r.net.ClearLinkFault(0, 1)
	r.run(t, 60*time.Second)
	healed := meanDelayAfter(r.eng.TakeDeliveries(), vclock.Time(50*time.Second))

	// The latency inflation is 3×40 ms = 120 ms; allow slack for tick
	// quantization but insist on a clearly visible shift.
	if slowed-base < 0.08 {
		t.Fatalf("degraded link did not slow deliveries: base %.3fs, slowed %.3fs", base, slowed)
	}
	if math.Abs(healed-base) > 0.04 {
		t.Fatalf("healed link did not restore baseline: base %.3fs, healed %.3fs", base, healed)
	}
}
