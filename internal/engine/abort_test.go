package engine

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

func TestCrashSiteCancelsInFlightTransfers(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 30*time.Second)

	// Migrate the map to site 2 with a transfer big enough to be mid-flight
	// when the destination dies.
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 100e6}}, nil); err != nil {
		t.Fatal(err)
	}
	r.run(t, 32*time.Second)
	if got := r.net.ActiveTransfers(); got != 1 {
		t.Fatalf("ActiveTransfers = %d mid-migration, want 1", got)
	}

	// Crashing the destination must detach the transfer from the network;
	// before the fix it kept claiming bandwidth forever.
	r.eng.CrashSite(2)
	if got := r.net.ActiveTransfers(); got != 0 {
		t.Fatalf("ActiveTransfers = %d after destination crash, want 0", got)
	}
	tr := r.eng.reconfigs[0].transfers[0]
	if !tr.Canceled() || tr.Done() {
		t.Fatalf("transfer canceled=%v done=%v, want canceled and not done", tr.Canceled(), tr.Done())
	}
	// The reconfiguration stays on the books so supervision observes it.
	if !r.eng.Reconfiguring(r.ids[1]) {
		t.Fatal("doomed reconfiguration vanished without an abort")
	}
}

func TestReconfigStatusesDetectsDoom(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 10*time.Second)
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 100e6}}, nil); err != nil {
		t.Fatal(err)
	}
	r.run(t, 12*time.Second)

	sts := r.eng.ReconfigStatuses(0)
	if len(sts) != 1 {
		t.Fatalf("got %d statuses, want 1", len(sts))
	}
	if sts[0].Doomed || sts[0].Stalled || sts[0].Reason != "" {
		t.Fatalf("healthy reconfiguration judged %+v", sts[0])
	}
	if sts[0].Op != r.ids[1] || sts[0].Age != vclock.Time(2*time.Second) {
		t.Fatalf("status identity wrong: %+v", sts[0])
	}

	// Blacking out the carrying link dooms the transfer.
	r.net.SetLinkFault(1, 2, 0)
	sts = r.eng.ReconfigStatuses(0)
	if !sts[0].Doomed || !strings.Contains(sts[0].Reason, "blacked out") {
		t.Fatalf("blackout not detected: %+v", sts[0])
	}
	r.net.ClearLinkFault(1, 2)

	// A crashed destination dooms it too (the crash cancels the transfer).
	r.eng.CrashSite(2)
	sts = r.eng.ReconfigStatuses(0)
	if !sts[0].Doomed || sts[0].Reason == "" {
		t.Fatalf("destination crash not detected: %+v", sts[0])
	}
}

func TestReconfigStatusesDetectsStall(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 10*time.Second)
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 100e6}}, nil); err != nil {
		t.Fatal(err)
	}
	r.run(t, 12*time.Second)

	// The transfer is moving: no stall even with a tight deadline.
	if sts := r.eng.ReconfigStatuses(vclock.Time(time.Second)); sts[0].Stalled {
		t.Fatalf("progressing transfer judged stalled: %+v", sts[0])
	}
	// Rewind the progress stamp to simulate a dead transfer the doom cases
	// miss; the stall verdict is pure no-progress arithmetic.
	r.eng.reconfigs[0].lastProgressAt = 0
	sts := r.eng.ReconfigStatuses(vclock.Time(10 * time.Second))
	if !sts[0].Stalled || !strings.Contains(sts[0].Reason, "no transfer progress") {
		t.Fatalf("stall not detected: %+v", sts[0])
	}
	// stallAfter <= 0 disables stall detection entirely.
	if sts := r.eng.ReconfigStatuses(0); sts[0].Stalled {
		t.Fatalf("stall reported with detection disabled: %+v", sts[0])
	}
}

func TestAbortReconfigureResumesOldPlacement(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 30*time.Second)

	onDoneRan := false
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 100e6}},
		func(vclock.Time) { onDoneRan = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t, 32*time.Second)
	r.eng.CrashSite(2) // destination dies mid-transfer
	if err := r.eng.AbortReconfigure(r.ids[1]); err != nil {
		t.Fatal(err)
	}

	if r.eng.Reconfiguring(r.ids[1]) || r.eng.PendingReconfigs() != 0 {
		t.Fatal("reconfiguration still pending after abort")
	}
	if onDoneRan {
		t.Fatal("aborted reconfiguration ran its onDone callback")
	}
	if got := r.net.ActiveTransfers(); got != 0 {
		t.Fatalf("ActiveTransfers = %d after abort, want 0", got)
	}
	if got := r.eng.SuspendedOps(); len(got) != 0 {
		t.Fatalf("SuspendedOps = %v after abort, want none", got)
	}
	if got := r.eng.Plan().Stages[r.ids[1]].Sites[0]; got != 1 {
		t.Fatalf("map at site %v after abort, want old placement 1", got)
	}

	// The stage keeps processing on its old placement.
	r.eng.TakeDeliveries()
	_, pre, _ := r.eng.Totals()
	r.run(t, 60*time.Second)
	_, post, _ := r.eng.Totals()
	if post <= pre {
		t.Fatal("stage did not resume after abort")
	}
	// Drain and check conservation across the aborted migration.
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 150*time.Second)
	if c := r.eng.Conservation(); !c.Holds() {
		t.Fatalf("conservation violated after abort: residual %v > eps %v", c.Residual(), c.Eps())
	}

	// Aborting a stage that is not reconfiguring is an error.
	if err := r.eng.AbortReconfigure(r.ids[1]); err == nil {
		t.Fatal("abort of a non-reconfiguring stage accepted")
	}
}

func TestAbortReplanReleasesSources(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 20*time.Second)

	if err := r.eng.AbortReplan(); err == nil {
		t.Fatal("abort without a re-plan accepted")
	}
	onDoneRan := false
	if err := r.eng.BeginReplan(r.pp.Clone(), nil,
		func(vclock.Time) { onDoneRan = true }); err != nil {
		t.Fatal(err)
	}
	if got := r.eng.SuspendedOps(); len(got) != 1 || got[0] != r.ids[0] {
		t.Fatalf("SuspendedOps = %v during replan, want the source", got)
	}
	if err := r.eng.AbortReplan(); err != nil {
		t.Fatal(err)
	}
	if r.eng.Replanning() || onDoneRan {
		t.Fatalf("replanning=%v onDone=%v after abort", r.eng.Replanning(), onDoneRan)
	}
	if got := r.eng.SuspendedOps(); len(got) != 0 {
		t.Fatalf("SuspendedOps = %v after abort, want none", got)
	}

	// The old pipeline keeps running and conserves events.
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 120*time.Second)
	generated, delivered, _ := r.eng.Totals()
	if math.Abs(delivered-generated) > 1 {
		t.Fatalf("abort lost events: delivered %v of %v", delivered, generated)
	}
}

func TestReplanStallDetection(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 20*time.Second)
	carry := map[plan.OpID]plan.OpID{r.ids[0]: r.ids[0], r.ids[2]: r.ids[2]}

	// Crash the map's site first: the drain backlog can never flow out.
	r.eng.CrashSite(1)
	if err := r.eng.BeginReplan(r.pp.Clone(), carry, nil); err != nil {
		t.Fatal(err)
	}
	if r.eng.ReplanStalled(vclock.Time(30 * time.Second)) {
		t.Fatal("stall reported before the deadline elapsed")
	}
	r.run(t, 60*time.Second)
	if !r.eng.Replanning() {
		t.Fatal("drain completed through a crashed site")
	}
	if !r.eng.ReplanStalled(vclock.Time(30 * time.Second)) {
		t.Fatal("stalled drain not detected")
	}
	if r.eng.ReplanStalled(0) {
		t.Fatal("stall reported with detection disabled")
	}
}

func TestHaltResumeIdempotent(t *testing.T) {
	cases := []struct {
		name string
		ops  func(r *rig)
	}{
		{"halt-halt-resume", func(r *rig) {
			r.eng.Halt(r.ids[1])
			r.eng.Halt(r.ids[1]) // double halt must not deepen the hold
			r.eng.Resume(r.ids[1])
		}},
		{"resume-without-halt", func(r *rig) {
			r.eng.Resume(r.ids[1]) // resuming a running stage is a no-op
		}},
		{"halt-resume-resume", func(r *rig) {
			r.eng.Halt(r.ids[1])
			r.eng.Resume(r.ids[1])
			r.eng.Resume(r.ids[1])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := pipelineRig(t, Config{}, 800, 10000)
			r.run(t, 10*time.Second)
			tc.ops(r)
			if got := r.eng.SuspendedOps(); len(got) != 0 {
				t.Fatalf("SuspendedOps = %v, want none", got)
			}
			r.eng.Sample()
			r.run(t, 30*time.Second)
			if snap := r.eng.Sample(); snap.Ops[r.ids[1]].ProcessingRate <= 0 {
				t.Fatal("stage idle after halt/resume sequence")
			}
		})
	}
}

func TestResumeCannotReleaseAdaptSuspension(t *testing.T) {
	r := pipelineRig(t, Config{}, 80, 10000)
	r.run(t, 10*time.Second)

	// A replan suspends the source via the adaptation hold; a stray
	// Halt/Resume cycle on the source must not release the drain's hold.
	if err := r.eng.BeginReplan(r.pp.Clone(), nil, nil); err != nil {
		t.Fatal(err)
	}
	r.eng.Halt(r.ids[0])
	r.eng.Resume(r.ids[0])
	if got := r.eng.SuspendedOps(); len(got) != 1 || got[0] != r.ids[0] {
		t.Fatalf("SuspendedOps = %v, want the source still held by the replan", got)
	}
	for _, g := range r.eng.opGroups(r.ids[0]) {
		if !g.haltedAdapt || g.haltedManual {
			t.Fatalf("source group haltedAdapt=%v haltedManual=%v, want true/false", g.haltedAdapt, g.haltedManual)
		}
	}
	// Likewise during a reconfiguration of the map.
	if err := r.eng.AbortReplan(); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.Reconfigure(r.ids[1], []topology.SiteID{2},
		[]Migration{{FromSite: 1, ToSite: 2, Bytes: 50e6}}, nil); err != nil {
		t.Fatal(err)
	}
	r.eng.Resume(r.ids[1])
	if got := r.eng.SuspendedOps(); len(got) != 1 || got[0] != r.ids[1] {
		t.Fatalf("SuspendedOps = %v, want the map still held by the reconfiguration", got)
	}
}
