package engine

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// TestFlightAllocsCeiling locks in the flight recorder's contract: a tick
// with an attached recorder must allocate nothing beyond what the bare
// tick already allocates. The recorder path itself (recordFlight plus the
// obs column writes) is 0 allocs/tick once the columns exist, so the
// ceiling with recording on equals the bare-tick ceiling.
func TestFlightAllocsCeiling(t *testing.T) {
	eng, sched := benchRig(t)
	eng.SetFlightRecorder(obs.NewFlightRecorder(obs.DefaultFlightCapacity))
	warmTo(t, eng, sched, 40*time.Second)
	now := sched.Now()
	ticks := 0
	avg := testing.AllocsPerRun(800, func() {
		now += vclock.Time(250 * time.Millisecond)
		if err := sched.RunUntil(now); err != nil {
			t.Fatal(err)
		}
		ticks++
		if ticks%80 == 0 {
			eng.TakeDeliveries()
		}
	})
	// Same ceiling as TestTickAllocsCeiling: flight recording adds zero.
	const ceiling = 8
	if avg > ceiling {
		t.Errorf("tick with flight recorder allocates %.1f objects/op, want <= %d", avg, ceiling)
	}
	if eng.FlightRecorder().Len() == 0 {
		t.Fatal("flight recorder captured no rows")
	}
}

// TestFlightRecorderCapturesEngineState sanity-checks the recorded
// columns: every stage appears, utilization stays in [0,1] bounds-ish,
// and the dump round-trips with rows matching ticks.
func TestFlightRecorderCapturesEngineState(t *testing.T) {
	eng, sched := benchRig(t)
	f := obs.NewFlightRecorder(256)
	eng.SetFlightRecorder(f)
	warmTo(t, eng, sched, 20*time.Second)

	if f.Len() == 0 {
		t.Fatal("no rows recorded")
	}
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	if !strings.Contains(header, `"flight":"wasp-flight/v1"`) {
		t.Fatalf("bad header: %s", header)
	}
	for _, want := range []string{"suspended_ops", "inflight_transfers", ".backlog", ".rate", ".util"} {
		if !strings.Contains(header, want) {
			t.Errorf("header missing column %q: %s", want, header)
		}
	}
	rows := strings.Count(buf.String(), "\n") - 1
	if rows != f.Len() {
		t.Errorf("dump has %d rows, recorder reports %d", rows, f.Len())
	}
}

// TestPerEngineTickCounts guards the satellite: Engine.Ticks is a
// per-instance counter while TickCount stays the process-wide aggregate
// waspbench reads. Two engines ticking concurrently must each report
// exactly their own ticks.
func TestPerEngineTickCounts(t *testing.T) {
	base := TickCount()
	engA, schedA := benchRig(t)
	engB, schedB := benchRig(t)
	a0, b0 := engA.Ticks(), engB.Ticks()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := schedA.RunUntil(vclock.Time(10 * time.Second)); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := schedB.RunUntil(vclock.Time(20 * time.Second)); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	da, db := engA.Ticks()-a0, engB.Ticks()-b0
	if da <= 0 || db <= 0 {
		t.Fatalf("per-engine ticks did not advance: a=%d b=%d", da, db)
	}
	// B ran twice as long on its own virtual clock, so it ticked ~2× more.
	if db <= da {
		t.Errorf("engine B ran longer but ticked less: a=%d b=%d", da, db)
	}
	if got := TickCount() - base; got < da+db {
		t.Errorf("aggregate TickCount advanced %d, want >= %d (sum of per-engine)", got, da+db)
	}
}

// TestAdaptPhaseEmission checks finalizeReconfig emits halt and transfer
// phase latencies into both the event stream and the labelled histogram.
func TestAdaptPhaseEmission(t *testing.T) {
	eng, sched := benchRig(t)
	o := obs.New(sched.Now)
	eng.SetObserver(o)
	warmTo(t, eng, sched, 10*time.Second)

	// Move the first stage that has a placement to the same sites (no-op
	// placement, real transfer).
	var op = eng.stageOrder[len(eng.stageOrder)-1]
	st := eng.plan.Stages[op]
	migs := []Migration{{FromSite: st.Sites[0], ToSite: st.Sites[0] + 1, Bytes: 5e6}}
	done := false
	if err := eng.Reconfigure(op, st.Sites, migs, func(vclock.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := sched.RunUntil(sched.Now() + vclock.Time(120*time.Second)); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("reconfiguration never completed")
	}
	phases := map[string]bool{}
	for _, ev := range o.Events("adapt.latency") {
		for _, kv := range ev.Attrs {
			if kv.Key == "phase" {
				phases[kv.Val.Str()] = true
			}
		}
	}
	for _, want := range []string{"halt", "transfer"} {
		if !phases[want] {
			t.Errorf("no adapt.latency event for phase %q (got %v)", want, phases)
		}
	}
	h := o.Registry().Histogram("wasp_adapt_latency_seconds", AdaptLatencyBuckets, "phase", "transfer")
	if h.Count() == 0 {
		t.Error("transfer-phase histogram is empty")
	}
}
