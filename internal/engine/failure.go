package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Partial failures (§8.6): unlike Fail, which revokes the whole
// deployment, these primitives kill or degrade individual sites. A site
// crash destroys every task group on the site — queued cohorts, window
// state, and outbound send queues — and the site stops accepting traffic
// until RestoreSite. Recovery is the adapt layer's job: re-place the dead
// tasks elsewhere, restore their state from surviving checkpoints, and
// pay the transfer over netsim.

// CrashSite kills a site. All task groups on it lose their queues and
// window state, its outbound send queues vanish with it, source arrivals
// at the site are lost until restart, and inbound flows hold their send
// queues (backpressure) until the placement changes. Crashing a site that
// is already down is a no-op.
func (e *Engine) CrashSite(site topology.SiteID) {
	if e.siteDown[site] {
		return
	}
	e.siteDown[site] = true

	var lost, lostBeyond float64
	if e.plan != nil {
		if order, err := e.plan.StageIDs(); err == nil {
			for _, id := range order {
				g, ok := e.groups[groupKey{op: id, site: site}]
				if !ok {
					continue
				}
				l, lb := e.wipeGroup(g)
				lost += l
				lostBeyond += lb
			}
		}
		for _, f := range e.sortedFlows() {
			if f.key.fromSite != site {
				continue
			}
			beyond := e.pastIngest(f.key.from)
			for _, c := range f.q.popAll() {
				lost += c.src()
				if beyond {
					lostBeyond += c.src()
				}
			}
		}
	}
	e.lostSrcEquiv += lost
	e.lostBeyondSrc += lostBeyond

	// Cancel in-flight migration transfers touching the crashed site: the
	// state they carry is gone (destination) or unreachable (source), and
	// without this they sit in netsim forever, pinning the stage suspended
	// and the reconfiguration pending. The reconfiguration itself stays on
	// the books so the adapt layer can observe it as doomed and abort it.
	for _, rc := range e.reconfigs {
		for _, tr := range rc.transfers {
			if !tr.Done() && (tr.From == site || tr.To == site) {
				e.net.CancelTransfer(tr)
			}
		}
	}

	if e.obs != nil {
		e.obs.Emit("fault.site_crash",
			obs.Int("site", int(site)),
			obs.F64("lost_src_events", lost))
		e.obs.Registry().Counter("wasp_site_crashes_total").Inc()
	}
}

// wipeGroup destroys a group's queued cohorts and window buffers,
// returning the source-equivalents lost and the subset already past
// ingest. Windows are drained in sorted start order so the float
// accumulation is replay-stable.
func (e *Engine) wipeGroup(g *group) (lost, lostBeyond float64) {
	beyond := e.pastIngest(g.op.ID)
	for _, c := range g.inQ.popAll() {
		lost += c.src()
		if beyond {
			lostBeyond += c.src()
		}
	}
	for i := range g.windows {
		lost += g.windows[i].srcTotal
		if beyond {
			lostBeyond += g.windows[i].srcTotal
		}
	}
	g.windows = g.windows[:0]
	return lost, lostBeyond
}

// pastIngest reports whether events held at the given operator have
// already been counted into transportedSrc: true for every operator
// downstream of the ingest stages (losing them must be charged back
// against goodput), false for sources and the ingest stages themselves.
func (e *Engine) pastIngest(id plan.OpID) bool {
	if e.frontOps[id] {
		return false
	}
	op := e.plan.Graph.Operator(id)
	return op != nil && op.Kind != plan.KindSource
}

// RestoreSite brings a crashed site back online, empty: its slots become
// usable and its pinned groups (sources, sinks) resume from scratch, but
// migrated state does not return until the controller places tasks there
// again. Restoring a live site is a no-op.
func (e *Engine) RestoreSite(site topology.SiteID) {
	if !e.siteDown[site] {
		return
	}
	e.siteDown[site] = false
	if e.obs != nil {
		e.obs.Emit("fault.site_restore", obs.Int("site", int(site)))
	}
}

// SiteDown reports whether the site is currently crashed.
func (e *Engine) SiteDown(site topology.SiteID) bool { return e.siteDown[site] }

// DownSites returns the crashed sites in ascending order.
func (e *Engine) DownSites() []topology.SiteID {
	var out []topology.SiteID
	for s, down := range e.siteDown {
		if down {
			out = append(out, topology.SiteID(s))
		}
	}
	return out
}

// SetSiteStraggler degrades the processing capacity of every task group
// at one site to the given factor (0 < factor < 1) — a site-wide slow
// node, composed multiplicatively with any per-operator straggler.
// Factor ≥ 1 or ≤ 0 clears it.
func (e *Engine) SetSiteStraggler(site topology.SiteID, factor float64) {
	if factor >= 1 || factor <= 0 {
		e.siteStrag[site] = 1
		return
	}
	e.siteStrag[site] = factor
}

// Lost reports cumulative failure losses in source-equivalent units:
// events destroyed by site crashes and the portion brought back by
// checkpoint restores. Net source-event loss = lost − restored.
func (e *Engine) Lost() (lost, restored float64) {
	return e.lostSrcEquiv, e.restoredSrcEquiv
}

// Group snapshots serialize the fluid model's operator state — the
// window accumulators plus the event-time frontier — with a fixed binary
// layout (NOT gob: map iteration must never order bytes). Layout:
//
//	u8  version (1)
//	i64 maxProcessedBorn
//	u32 window count
//	per window, ascending start:
//	  i64 start · f64 count · f64 srcTotal · i64 maxBorn
const snapshotVersion = 1

// SnapshotGroup captures the state of one task group for checkpointing.
// Stateless groups produce a snapshot holding only the frontier.
func (e *Engine) SnapshotGroup(op plan.OpID, site topology.SiteID) ([]byte, error) {
	g, ok := e.groups[groupKey{op: op, site: site}]
	if !ok {
		return nil, fmt.Errorf("engine: no group for op %d at site %d", op, site)
	}
	if e.siteDown[site] {
		return nil, fmt.Errorf("engine: site %d is down", site)
	}
	buf := make([]byte, 0, 1+8+4+len(g.windows)*32)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(g.maxProcessedBorn))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(g.windows)))
	for i := range g.windows {
		w := &g.windows[i]
		buf = binary.BigEndian.AppendUint64(buf, uint64(w.start))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(w.count))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(w.srcTotal))
		buf = binary.BigEndian.AppendUint64(buf, uint64(w.maxBorn))
	}
	return buf, nil
}

// RestoreOperatorState replays a group snapshot into the operator's live
// groups, split by task share (the checkpointed partitions are re-keyed
// across the replacement placement). Restored windows whose boundary has
// passed fire on the next tick — the at-least-once replay a checkpoint
// restore implies. Events restored this way count against the crash's
// loss tally.
func (e *Engine) RestoreOperatorState(op plan.OpID, data []byte) error {
	wins, frontier, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	var groups []*group
	for _, g := range e.opGroups(op) {
		if !e.siteDown[g.site] {
			groups = append(groups, g)
		}
	}
	if len(groups) == 0 {
		return fmt.Errorf("engine: no live groups for op %d to restore into", op)
	}
	total := 0
	for _, g := range groups {
		total += g.tasks
	}
	var restored float64
	for _, g := range groups {
		share := float64(g.tasks) / float64(total)
		if frontier > g.maxProcessedBorn {
			g.maxProcessedBorn = frontier
		}
		if !g.windowed {
			continue // stateless operator: only the frontier carries over
		}
		for _, w := range wins {
			dst := g.winAt(w.start)
			dst.count += w.count * share
			dst.srcTotal += w.srcTotal * share
			if w.maxBorn > dst.maxBorn {
				dst.maxBorn = w.maxBorn
			}
			restored += w.srcTotal * share
		}
	}
	// A restore can never bring back more than the crash destroyed: cap
	// the credit so net loss (and goodput) stay honest under replay. The
	// uncapped total is tracked separately — conservation checking must
	// see every source-equivalent actually reinjected, including the
	// at-least-once surplus the cap hides.
	e.reinjectedSrcEquiv += restored
	e.restoredSrcEquiv += math.Min(restored, e.lostSrcEquiv-e.restoredSrcEquiv)
	if e.pastIngest(op) {
		e.restoredBeyondSrc += math.Min(restored, e.lostBeyondSrc-e.restoredBeyondSrc)
	}
	if e.obs != nil {
		e.obs.Emit("recovery.state_restored",
			obs.Int("op", int(op)),
			obs.F64("restored_src_events", restored),
			obs.Int("windows", len(wins)))
	}
	return nil
}

// snapWin is one decoded window accumulator.
type snapWin struct {
	start           vclock.Time
	count, srcTotal float64
	maxBorn         vclock.Time
}

func decodeSnapshot(data []byte) ([]snapWin, vclock.Time, error) {
	if len(data) < 13 {
		return nil, 0, fmt.Errorf("engine: snapshot truncated (%d bytes)", len(data))
	}
	if data[0] != snapshotVersion {
		return nil, 0, fmt.Errorf("engine: unknown snapshot version %d", data[0])
	}
	frontier := vclock.Time(binary.BigEndian.Uint64(data[1:9]))
	n := int(binary.BigEndian.Uint32(data[9:13]))
	if len(data) != 13+n*32 {
		return nil, 0, fmt.Errorf("engine: snapshot length %d does not match %d windows", len(data), n)
	}
	wins := make([]snapWin, n)
	off := 13
	for i := range wins {
		wins[i] = snapWin{
			start:    vclock.Time(binary.BigEndian.Uint64(data[off:])),
			count:    math.Float64frombits(binary.BigEndian.Uint64(data[off+8:])),
			srcTotal: math.Float64frombits(binary.BigEndian.Uint64(data[off+16:])),
			maxBorn:  vclock.Time(binary.BigEndian.Uint64(data[off+24:])),
		}
		off += 32
	}
	return wins, frontier, nil
}
