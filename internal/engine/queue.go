package engine

import (
	"github.com/wasp-stream/wasp/internal/vclock"
)

// cohort is a fluid bundle of events sharing a generation time. The flow-
// mode engine moves cohorts (not individual records) through queues and
// links, preserving `born` so end-to-end delay is measurable at the sinks.
// Link propagation latency is accounted by aging `born` backwards at each
// WAN hop, so delay = now − born at any point.
//
// worth is the source-equivalent value of one event in the cohort: source
// events start at worth 1, and an operator with selectivity σ emits events
// of worth w/σ, so count×worth — the source events represented — is
// conserved through the pipeline. Drops and goodput are accounted exactly
// with it.
type cohort struct {
	born  vclock.Time
	count float64
	worth float64
	// raw marks cohorts of unaggregated events. Windowed/aggregating
	// operators emit raw=false "partial result" cohorts; the Degrade
	// policy sheds only raw cohorts (dropping a partial result would
	// silently discard the many source events it represents).
	raw bool
}

// src returns the cohort's source-equivalent total.
//
//waspvet:hotpath
func (c cohort) src() float64 { return c.count * c.worth }

// cohortQueue is a FIFO of cohorts with O(1) amortized push/pop.
type cohortQueue struct {
	items []cohort
	head  int
	total float64
}

// push appends count events of the given per-event worth, merging with
// the tail cohort when the born time and rawness match (worth becomes the
// count-weighted average, preserving source-equivalent totals).
//
//waspvet:hotpath
func (q *cohortQueue) push(born vclock.Time, count, worth float64, raw bool) {
	if count <= 0 {
		return
	}
	q.total += count
	if n := len(q.items); n > q.head && q.items[n-1].born == born && q.items[n-1].raw == raw {
		tail := &q.items[n-1]
		tail.worth = (tail.count*tail.worth + count*worth) / (tail.count + count)
		tail.count += count
		return
	}
	q.items = append(q.items, cohort{born: born, count: count, worth: worth, raw: raw})
}

// len returns the number of queued events.
//
//waspvet:hotpath
func (q *cohortQueue) len() float64 { return q.total }

// srcTotal returns the source-equivalent total across the live cohorts,
// for conservation accounting and drain-progress measurement.
//
//waspvet:hotpath
func (q *cohortQueue) srcTotal() float64 {
	var total float64
	for i := q.head; i < len(q.items); i++ {
		total += q.items[i].src()
	}
	return total
}

// empty reports whether the queue holds no events.
//
//waspvet:hotpath
func (q *cohortQueue) empty() bool { return q.total <= 1e-9 }

// oldestBorn returns the generation time of the head cohort, or ok=false
// when empty. The head-bound check guards against float residue in total
// making empty() disagree with the item slice.
//
//waspvet:hotpath
func (q *cohortQueue) oldestBorn() (vclock.Time, bool) {
	if q.empty() || q.head >= len(q.items) {
		return 0, false
	}
	return q.items[q.head].born, true
}

// pop removes up to n events from the head, returning the removed cohorts
// in FIFO order.
func (q *cohortQueue) pop(n float64) []cohort { return q.popInto(n, nil) }

// popInto is pop appending into a caller-supplied buffer, so per-tick
// callers can recycle one scratch slice instead of allocating per pop.
//
//waspvet:hotpath
func (q *cohortQueue) popInto(n float64, out []cohort) []cohort {
	for n > 1e-9 && q.head < len(q.items) {
		c := &q.items[q.head]
		if c.count <= n+1e-9 {
			out = append(out, *c)
			n -= c.count
			q.total -= c.count
			q.head++
			continue
		}
		out = append(out, cohort{born: c.born, count: n, worth: c.worth, raw: c.raw})
		c.count -= n
		q.total -= n
		n = 0
	}
	q.compact()
	q.resync()
	return out
}

// popHead removes and returns the head cohort regardless of its size
// (ok=false when empty). Used by shedding paths, where pop's fractional
// epsilon handling could otherwise spin on sub-epsilon head cohorts.
//
//waspvet:hotpath
func (q *cohortQueue) popHead() (cohort, bool) {
	if q.head >= len(q.items) {
		return cohort{}, false
	}
	c := q.items[q.head]
	q.head++
	q.total -= c.count
	q.compact()
	q.resync()
	return c, true
}

// popAll drains the queue exactly, returning every remaining cohort. It
// iterates the item slice rather than popping by count so accumulated
// float error in total can never leave cohorts behind.
//
//waspvet:ordered FIFO arrival order, deterministic under the virtual clock
func (q *cohortQueue) popAll() []cohort { return q.popAllInto(nil) }

// popAllInto is popAll appending into a caller-supplied buffer.
//
//waspvet:hotpath
func (q *cohortQueue) popAllInto(out []cohort) []cohort {
	for i := q.head; i < len(q.items); i++ {
		out = append(out, q.items[i])
	}
	q.items = q.items[:0]
	q.head = 0
	q.total = 0
	return out
}

// resync re-establishes the invariant that total is the sum of the live
// items. Repeated fractional pops accumulate floating-point error in
// total; on a large queue the residue can exceed the 1e-9 epsilon even
// when every cohort has been consumed, making empty() report non-empty
// while head == len(items) — and oldestBorn index out of range. When the
// item slice is drained, total is exactly zero by construction.
//
//waspvet:hotpath
func (q *cohortQueue) resync() {
	if q.head >= len(q.items) || q.total < 1e-9 {
		q.total = 0
	}
}

// compact reclaims consumed head space once it dominates the backing
// array.
//
//waspvet:hotpath
func (q *cohortQueue) compact() {
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
}
