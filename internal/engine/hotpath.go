package engine

// Tick hot-path caches. The 250 ms tick used to re-sort the flow map,
// re-derive the stage topological order, and re-walk every stage's
// downstream placement on every step — allocation churn proportional to
// ticks × flows × fan-out, dominating long experiment replays. Everything
// the tick derives purely from structural state (the plan graph, stage
// placements, the group set, the flow set) is now computed once and
// reused until a structural mutation flags it dirty:
//
//   - topoDirty: set by Deploy/buildGroups/addGroup, finalizeReconfig
//     (group deletion + Sites mutation), and progressReplan (plan
//     replacement). Guards stageOrder, stageGroups, srcGens, fanPlans.
//   - flowsDirty: set by addFlow, rebuildFlows, and progressReplan's flow
//     teardown. Guards flowList (the sortedFlows order); ensureWiring
//     layers the columnar flow/group/link tables on top of both gens.
//
// CrashSite/RestoreSite/InjectStraggler/Halt/Resume mutate per-group or
// per-site state only — group pointers stay valid — so they invalidate
// nothing. Rebuilds allocate fresh slices (never recycle the old backing
// arrays) so a snapshot taken earlier in a tick, e.g. the flow list the
// demand pass handed to deliverFlows, can never be overwritten by a
// mid-tick rebuild triggered by fanOut adding a flow. Determinism is
// untouched: every cached order is the same sorted order the tick used to
// recompute, verified by the same-seed byte-compare suite.

import (
	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// fanSite is one destination site of a cached fan-out target with its
// precomputed task share and resolved delivery endpoints, so the per-tick
// fan-out avoids hashing group/flow keys:
//
//   - dst is the same-site destination group, resolved when the fan plan
//     is rebuilt. Safe to resolve eagerly because every mutation of the
//     group set (addGroup, buildGroups, finalizeReconfig's teardown) sets
//     topoDirty, which discards the whole fan plan. A nil dst reproduces
//     the map-miss behaviour: the events are counted as lost.
//   - flowBySrc caches the cross-site flow per SENDER site (fan plans are
//     shared by all groups of the from-operator, so the cache must be
//     keyed by the sender's site). Entries are valid only while flowEpoch
//     matches the engine's flow-set epoch, which bumps on every flow
//     add/teardown; a stale or missing entry falls back to the map (and
//     lazy addFlow), exactly as before.
type fanSite struct {
	site      topology.SiteID
	share     float64
	dst       *group
	flowBySrc []*edgeFlow
	flowEpoch uint64
}

// fanTarget is one downstream operator of a cached fan-out plan.
type fanTarget struct {
	down  plan.OpID
	sites []fanSite
}

// srcGen is one source operator's generation slot: generate() pushes each
// tick's external arrivals to the operator's first group (sources are
// pinned: single group).
type srcGen struct {
	id plan.OpID
	op *plan.Operator
	g  *group
}

// ensureTopo rebuilds the plan-derived caches when dirty: the stage
// topological order, each stage's groups (ascending site), the source
// generation list, and the per-operator fan-out plans.
func (e *Engine) ensureTopo() {
	if !e.topoDirty {
		return
	}
	e.topoDirty = false
	e.topoGen++
	order, err := e.plan.StageIDs()
	e.topoErr = err
	if err != nil {
		e.stageOrder, e.stageGroups, e.srcGens, e.fanPlans = nil, nil, nil, nil
		return
	}
	e.stageOrder = order
	e.stageGroups = make([][]*group, len(order))
	for i, id := range order {
		e.stageGroups[i] = e.opGroups(id)
	}

	var srcs []srcGen
	for _, id := range e.plan.Graph.OperatorIDs() {
		st, ok := e.plan.Stages[id]
		if !ok || st.Op.Kind != plan.KindSource {
			continue
		}
		if gs := e.opGroups(id); len(gs) > 0 {
			srcs = append(srcs, srcGen{id: id, op: st.Op, g: gs[0]})
		}
	}
	e.srcGens = srcs

	fans := make(map[plan.OpID][]fanTarget, len(order))
	for _, id := range order {
		downs := e.plan.Graph.Downstream(id)
		if len(downs) == 0 {
			continue
		}
		targets := make([]fanTarget, 0, len(downs))
		for _, downID := range downs {
			downStage := e.plan.Stages[downID]
			total := float64(downStage.Parallelism())
			if total == 0 {
				continue
			}
			sites := downStage.DistinctSites()
			ft := fanTarget{down: downID, sites: make([]fanSite, 0, len(sites))}
			for _, site := range sites {
				ft.sites = append(ft.sites, fanSite{
					site:  site,
					share: float64(countSites(downStage.Sites, site)) / total,
					dst:   e.groups[groupKey{op: downID, site: site}],
				})
			}
			targets = append(targets, ft)
		}
		fans[id] = targets
	}
	e.fanPlans = fans
}

// ensureFlows rebuilds the flow-derived caches when dirty: the canonical
// sorted flow list.
func (e *Engine) ensureFlows() {
	if !e.flowsDirty {
		return
	}
	e.flowsDirty = false
	e.flowsGen++
	e.flowKeyBuf = detutil.SortedKeysFuncInto(e.flows, e.flowKeyBuf[:0], flowKeyLess)
	list := make([]*edgeFlow, len(e.flowKeyBuf))
	for i, k := range e.flowKeyBuf {
		list[i] = e.flows[k]
	}
	e.flowList = list
}

// ensureWiring rebuilds the columnar tick wiring when either structural
// generation moved: the canonical group list (groupKeyLess order) with
// each group's cached front flag and outbound flow list, the flat flow
// columns parallel to flowList (netsim flow, event bytes, latency, site
// pair, destination group, past-ingest flag, dense link id), the link
// table behind the per-tick capacity cache, and the per-operator flow
// index. All slices are freshly allocated — a snapshot captured earlier
// in the tick can never be overwritten by a mid-tick rebuild.
func (e *Engine) ensureWiring() {
	e.ensureTopo()
	e.ensureFlows()
	if e.wTopoGen == e.topoGen && e.wFlowsGen == e.flowsGen {
		return
	}
	e.wTopoGen, e.wFlowsGen = e.topoGen, e.flowsGen
	e.wiringGen++
	e.capsValid = false

	gl := make([]*group, 0, len(e.groups))
	for _, k := range detutil.SortedKeysFunc(e.groups, groupKeyLess) {
		gl = append(gl, e.groups[k])
	}
	for _, g := range gl {
		g.cap = g.capacity(e.cfg.SlotRate)
		g.bpLimit = g.cap * e.cfg.BackpressureSec
		g.isSink = g.op.Kind == plan.KindSink
		g.sigma = g.op.Selectivity
		if g.op.Kind == plan.KindSource {
			g.sigma = 1
		}
		g.front = e.frontOps[g.op.ID]
		g.out = nil
	}
	e.groupList = gl

	n := len(e.flowList)
	fNet := make([]*netsim.Flow, n)
	fBytes := make([]float64, n)
	fLatency := make([]vclock.Time, n)
	fFromSite := make([]topology.SiteID, n)
	fToSite := make([]topology.SiteID, n)
	fDst := make([]*group, n)
	fSrcFront := make([]bool, n)
	linkIdx := make(map[sitePair]int32, len(e.linkPairs))
	pairs := make([]sitePair, 0, len(e.linkPairs))
	opFlows := make(map[plan.OpID][]*edgeFlow)
	for i, f := range e.flowList {
		fNet[i] = f.flow
		fBytes[i] = f.eventBytes
		fLatency[i] = f.latency
		fFromSite[i] = f.key.fromSite
		fToSite[i] = f.key.toSite
		fDst[i] = e.groups[groupKey{op: f.key.to, site: f.key.toSite}]
		fSrcFront[i] = e.frontOps[f.key.from]
		pair := sitePair{from: f.key.fromSite, to: f.key.toSite}
		id, ok := linkIdx[pair]
		if !ok {
			id = int32(len(pairs))
			pairs = append(pairs, pair)
			linkIdx[pair] = id
		}
		f.linkID = id
		if g, ok := e.groups[groupKey{op: f.key.from, site: f.key.fromSite}]; ok {
			g.out = append(g.out, f)
		}
		opFlows[f.key.from] = append(opFlows[f.key.from], f)
	}
	e.fNet, e.fBytes, e.fLatency = fNet, fBytes, fLatency
	e.fFromSite, e.fToSite = fFromSite, fToSite
	e.fDst, e.fSrcFront = fDst, fSrcFront
	e.linkPairs = pairs
	e.linkCaps = make([]float64, len(pairs))
	e.opFlows = opFlows
}
