package engine

// Tick hot-path caches. The 250 ms tick used to re-sort the flow map,
// re-derive the stage topological order, and re-walk every stage's
// downstream placement on every step — allocation churn proportional to
// ticks × flows × fan-out, dominating long experiment replays. Everything
// the tick derives purely from structural state (the plan graph, stage
// placements, the group set, the flow set) is now computed once and
// reused until a structural mutation flags it dirty:
//
//   - topoDirty: set by Deploy/buildGroups/addGroup, finalizeReconfig
//     (group deletion + Sites mutation), and progressReplan (plan
//     replacement). Guards stageOrder, stageGroups, srcGens, fanPlans.
//   - flowsDirty: set by addFlow, rebuildFlows, and progressReplan's flow
//     teardown. Guards flowList (the sortedFlows order) and outFlows (the
//     per-group send-queue index used by backpressure checks).
//
// CrashSite/RestoreSite/InjectStraggler/Halt/Resume mutate per-group or
// per-site state only — group pointers stay valid — so they invalidate
// nothing. Rebuilds allocate fresh slices (never recycle the old backing
// arrays) so a snapshot taken earlier in a tick, e.g. the flow list the
// demand pass handed to deliverFlows, can never be overwritten by a
// mid-tick rebuild triggered by fanOut adding a flow. Determinism is
// untouched: every cached order is the same sorted order the tick used to
// recompute, verified by the same-seed byte-compare suite.

import (
	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
)

// fanSite is one destination site of a cached fan-out target with its
// precomputed task share.
type fanSite struct {
	site  topology.SiteID
	share float64
}

// fanTarget is one downstream operator of a cached fan-out plan.
type fanTarget struct {
	down  plan.OpID
	sites []fanSite
}

// srcGen is one source operator's generation slot: generate() pushes each
// tick's external arrivals to the operator's first group (sources are
// pinned: single group).
type srcGen struct {
	id plan.OpID
	op *plan.Operator
	g  *group
}

// ensureTopo rebuilds the plan-derived caches when dirty: the stage
// topological order, each stage's groups (ascending site), the source
// generation list, and the per-operator fan-out plans.
func (e *Engine) ensureTopo() {
	if !e.topoDirty {
		return
	}
	e.topoDirty = false
	e.topoGen++
	order, err := e.plan.StageIDs()
	e.topoErr = err
	if err != nil {
		e.stageOrder, e.stageGroups, e.srcGens, e.fanPlans = nil, nil, nil, nil
		return
	}
	e.stageOrder = order
	e.stageGroups = make([][]*group, len(order))
	for i, id := range order {
		e.stageGroups[i] = e.opGroups(id)
	}

	var srcs []srcGen
	for _, id := range e.plan.Graph.OperatorIDs() {
		st, ok := e.plan.Stages[id]
		if !ok || st.Op.Kind != plan.KindSource {
			continue
		}
		if gs := e.opGroups(id); len(gs) > 0 {
			srcs = append(srcs, srcGen{id: id, op: st.Op, g: gs[0]})
		}
	}
	e.srcGens = srcs

	fans := make(map[plan.OpID][]fanTarget, len(order))
	for _, id := range order {
		downs := e.plan.Graph.Downstream(id)
		if len(downs) == 0 {
			continue
		}
		targets := make([]fanTarget, 0, len(downs))
		for _, downID := range downs {
			downStage := e.plan.Stages[downID]
			total := float64(downStage.Parallelism())
			if total == 0 {
				continue
			}
			sites := downStage.DistinctSites()
			ft := fanTarget{down: downID, sites: make([]fanSite, 0, len(sites))}
			for _, site := range sites {
				ft.sites = append(ft.sites, fanSite{
					site:  site,
					share: float64(countSites(downStage.Sites, site)) / total,
				})
			}
			targets = append(targets, ft)
		}
		fans[id] = targets
	}
	e.fanPlans = fans
}

// ensureFlows rebuilds the flow-derived caches when dirty: the canonical
// sorted flow list and the per-(op, site) outbound flow index.
func (e *Engine) ensureFlows() {
	if !e.flowsDirty {
		return
	}
	e.flowsDirty = false
	e.flowsGen++
	e.flowKeyBuf = detutil.SortedKeysFuncInto(e.flows, e.flowKeyBuf[:0], flowKeyLess)
	list := make([]*edgeFlow, len(e.flowKeyBuf))
	out := make(map[groupKey][]*edgeFlow, len(e.groups))
	for i, k := range e.flowKeyBuf {
		f := e.flows[k]
		list[i] = f
		gk := groupKey{op: k.from, site: k.fromSite}
		out[gk] = append(out[gk], f)
	}
	e.flowList = list
	e.outFlows = out
}
