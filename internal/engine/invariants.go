package engine

import (
	"math"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/plan"
)

// Conservation is a point-in-time balance of the engine's source-equivalent
// accounting, for end-of-run invariant checking (internal/chaos). Every
// source event generated must end up delivered at a sink, dropped by a
// shedding policy, destroyed by a crash, or still in flight; checkpoint
// restores reinject replayed state on top, which the balance credits back.
type Conservation struct {
	Generated  float64 // source events created (including those lost at down ingest sites)
	Delivered  float64 // source equivalents that reached a sink
	Dropped    float64 // source equivalents shed by degradation policies
	Lost       float64 // source equivalents destroyed by crashes
	Restored   float64 // crash losses credited back by checkpoint restores (capped at Lost)
	Reinjected float64 // uncapped total reinjected by restores (≥ Restored under replay)
	InFlight   float64 // source equivalents still queued in groups, windows, and send queues
}

// Residual is the conservation imbalance; zero (within Eps) when the
// accounting closes. Restores are at-least-once, so the reinjected surplus
// beyond the restored credit re-enters the pipeline and is discounted:
//
//	Delivered + Dropped + (Lost − Restored) + InFlight
//	    − Generated − (Reinjected − Restored) ≈ 0
func (c Conservation) Residual() float64 {
	return c.Delivered + c.Dropped + c.Lost + c.InFlight - c.Generated - c.Reinjected
}

// Eps is the tolerance Residual is judged against: float accumulation
// error grows with run volume, so the bound scales with Generated.
func (c Conservation) Eps() float64 {
	return math.Max(1, 1e-6*c.Generated)
}

// Holds reports whether the balance closes within tolerance.
func (c Conservation) Holds() bool {
	return math.Abs(c.Residual()) <= c.Eps()
}

// Conservation returns the engine's current source-equivalent balance.
// Iteration is fully deterministic (sorted stages, ascending sites,
// canonical flow order) so the float sums are replay-stable.
func (e *Engine) Conservation() Conservation {
	c := Conservation{
		Generated:  e.totalGenerated,
		Delivered:  e.deliveredSrcEquiv,
		Dropped:    e.droppedSrcEquiv,
		Lost:       e.lostSrcEquiv,
		Restored:   e.restoredSrcEquiv,
		Reinjected: e.reinjectedSrcEquiv,
	}
	c.InFlight = e.inFlightSrcEquiv()
	return c
}

// inFlightSrcEquiv sums the source equivalents still held inside the
// pipeline: group input queues, window accumulators, and edge send queues.
func (e *Engine) inFlightSrcEquiv() float64 {
	var total float64
	if e.plan == nil {
		return 0
	}
	for _, id := range detutil.SortedKeys(e.plan.Stages) {
		for _, g := range e.opGroups(id) {
			total += g.inQ.srcTotal()
			for i := range g.windows {
				total += g.windows[i].srcTotal
			}
		}
	}
	for _, f := range e.sortedFlows() {
		total += f.q.srcTotal()
	}
	return total
}

// SuspendedOps returns the operators with at least one suspended group
// (manual halt or adaptation hold), ascending by ID. A healthy end-of-run
// state has none: every reconfiguration and re-plan either finished or
// was aborted.
func (e *Engine) SuspendedOps() []plan.OpID {
	if e.plan == nil {
		return nil
	}
	var out []plan.OpID
	for _, id := range detutil.SortedKeys(e.plan.Stages) {
		for _, g := range e.opGroups(id) {
			if g.suspended() {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// PendingReconfigs returns the number of reconfigurations still in flight.
func (e *Engine) PendingReconfigs() int { return len(e.reconfigs) }
