package engine

import (
	"errors"
	"fmt"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Migration is one task state transfer between sites, part of a
// reconfiguration.
type Migration struct {
	FromSite topology.SiteID
	ToSite   topology.SiteID
	Bytes    float64
}

// reconfiguration is an in-flight re-assignment or rescale of one stage:
// the stage is suspended until every state transfer completes (§4.1: halt,
// instantiate new tasks, resume).
type reconfiguration struct {
	op        plan.OpID
	newSites  []topology.SiteID
	transfers []*netsim.Transfer
	startedAt vclock.Time
	finished  func(now vclock.Time)
	span      *obs.Span
}

// Reconfigure suspends the stage running `op`, migrates state per
// `migrations` over the WAN, and when the slowest transfer completes,
// reinstates the stage with the new placement (covering task
// re-assignment, scale-out/up, and scale-down). Queued cohorts and window
// state carry over to the new groups; events arriving during the
// transition queue up and are drained afterwards. onDone, if non-nil, is
// called at completion time.
func (e *Engine) Reconfigure(op plan.OpID, newSites []topology.SiteID, migrations []Migration, onDone func(now vclock.Time)) error {
	if e.plan == nil {
		return errors.New("engine: not deployed")
	}
	st, ok := e.plan.Stages[op]
	if !ok {
		return fmt.Errorf("engine: unknown operator %d", op)
	}
	if len(newSites) == 0 {
		return errors.New("engine: empty placement")
	}
	for _, r := range e.reconfigs {
		if r.op == op {
			return fmt.Errorf("engine: operator %d already reconfiguring", op)
		}
	}

	// Suspend only the groups at sites losing tasks: pure scale-outs keep
	// the existing tasks processing while new tasks receive their state
	// partitions; full moves suspend everything (§4.1).
	newCount := make(map[topology.SiteID]int)
	for _, s := range newSites {
		newCount[s]++
	}
	oldCount := make(map[topology.SiteID]int)
	for _, s := range st.Sites {
		oldCount[s]++
	}
	for _, g := range e.opGroups(op) {
		if oldCount[g.site] > newCount[g.site] {
			g.halted = true
		}
	}
	rc := &reconfiguration{
		op:        op,
		newSites:  append([]topology.SiteID(nil), newSites...),
		startedAt: e.sched.Now(),
		finished:  onDone,
	}
	var migBytes float64
	for _, m := range migrations {
		if m.Bytes <= 0 || m.FromSite == m.ToSite {
			continue
		}
		rc.transfers = append(rc.transfers, e.net.StartTransfer(m.FromSite, m.ToSite, m.Bytes))
		migBytes += m.Bytes
	}
	if e.obs != nil {
		// The span parents to whatever decision span is active at the
		// call (the controller's), and finishes when the stage resumes.
		rc.span = e.obs.StartAsync("engine.reconfigure",
			obs.Int("op", int(op)),
			obs.String("sites", fmt.Sprint(rc.newSites)),
			obs.Int("transfers", len(rc.transfers)),
			obs.F64("migration_bytes", migBytes))
		e.tel.reconfigs.Inc()
		e.tel.migBytes.Add(migBytes)
	}
	e.reconfigs = append(e.reconfigs, rc)
	return nil
}

// Reconfiguring reports whether the given stage has a pending
// reconfiguration.
func (e *Engine) Reconfiguring(op plan.OpID) bool {
	for _, r := range e.reconfigs {
		if r.op == op {
			return true
		}
	}
	return false
}

// progressReconfigs finalizes reconfigurations whose transfers completed.
func (e *Engine) progressReconfigs(now vclock.Time) {
	remaining := e.reconfigs[:0]
	for _, rc := range e.reconfigs {
		done := true
		for _, tr := range rc.transfers {
			if !tr.Done() {
				done = false
				break
			}
		}
		if !done {
			remaining = append(remaining, rc)
			continue
		}
		e.finalizeReconfig(rc, now)
	}
	e.reconfigs = remaining
}

func (e *Engine) finalizeReconfig(rc *reconfiguration, now vclock.Time) {
	old := e.opGroups(rc.op)

	// Gather carried state: queued cohorts, window buffers, frontier.
	var carriedQ []cohort
	carriedWins := make(map[vclock.Time]*winAcc)
	var frontier vclock.Time
	for _, g := range old {
		carriedQ = g.inQ.popAllInto(carriedQ)
		for start, w := range g.windows {
			dst := carriedWins[start]
			if dst == nil {
				dst = &winAcc{}
				carriedWins[start] = dst
			}
			dst.count += w.count
			dst.srcTotal += w.srcTotal
			if w.maxBorn > dst.maxBorn {
				dst.maxBorn = w.maxBorn
			}
		}
		if g.maxProcessedBorn > frontier {
			frontier = g.maxProcessedBorn
		}
		delete(e.groups, groupKey{op: rc.op, site: g.site})
	}
	e.topoDirty = true // group set and stage placement are about to change

	// Install the new placement on the plan.
	e.plan.Stages[rc.op].Sites = append([]topology.SiteID(nil), rc.newSites...)

	// Build the new groups and spread the carried state by task share.
	perSite := make(map[topology.SiteID]int)
	for _, s := range rc.newSites {
		perSite[s]++
	}
	total := float64(len(rc.newSites))
	var newGroups []*group
	for s := 0; s < e.top.N(); s++ {
		site := topology.SiteID(s)
		n, ok := perSite[site]
		if !ok {
			continue
		}
		g := e.addGroup(rc.op, site, n)
		g.maxProcessedBorn = frontier
		newGroups = append(newGroups, g)
	}
	for _, g := range newGroups {
		share := float64(g.tasks) / total
		for _, c := range carriedQ {
			g.inQ.push(c.born, c.count*share, c.worth, c.raw)
		}
		if g.windows != nil {
			for start, w := range carriedWins {
				g.windows[start] = &winAcc{count: w.count * share, srcTotal: w.srcTotal * share, maxBorn: w.maxBorn}
			}
		}
	}

	e.rebuildFlows()
	e.refreshGoodputModel()
	if rc.span != nil {
		e.tel.migSeconds.Observe((now - rc.startedAt).Seconds())
		rc.span.Finish()
	}
	if rc.finished != nil {
		rc.finished(now)
	}
}

// Fail revokes all computational resources for the given duration (§8.6):
// processing and data movement stop; external arrivals keep accumulating.
// State survives (localized checkpoints restore it on recovery).
func (e *Engine) Fail(outage vclock.Time) {
	until := e.sched.Now() + outage
	if until > e.failedUntil {
		e.failedUntil = until
	}
	if e.obs != nil {
		e.obs.Emit("engine.fail", obs.Dur("outage", outage))
		e.tel.failures.Inc()
	}
}

// Failed reports whether the engine is currently in a failure outage.
func (e *Engine) Failed() bool { return e.sched.Now() <= e.failedUntil }

// pendingReplan tracks an in-flight plan switch: sources are suspended,
// the old pipeline drains, then the new plan takes over with carried
// state.
type pendingReplan struct {
	newPlan  *physical.Plan
	carry    map[plan.OpID]plan.OpID // old op → new op for state carryover
	started  vclock.Time
	finished func(now vclock.Time)
	span     *obs.Span
}

// BeginReplan initiates a query re-plan (§4.3): source emission is
// suspended (external events keep queueing), the in-flight events drain
// through the old plan, and once empty the new physical plan takes over.
// carry maps old operator IDs to new ones for every operator whose state
// and backlog must survive (sources, sinks, and common stateful
// sub-plans). The drain-then-switch models the paper's window-boundary
// reconfiguration and is what makes re-planning the highest-overhead
// technique (Table 2).
func (e *Engine) BeginReplan(newPlan *physical.Plan, carry map[plan.OpID]plan.OpID, onDone func(now vclock.Time)) error {
	if e.plan == nil {
		return errors.New("engine: not deployed")
	}
	if e.replan != nil {
		return errors.New("engine: re-plan already in progress")
	}
	if err := newPlan.Validate(e.top); err != nil {
		return fmt.Errorf("engine: new plan invalid: %w", err)
	}
	for oldID, newID := range carry {
		if _, ok := e.plan.Stages[oldID]; !ok {
			return fmt.Errorf("engine: carry source op %d not in current plan", oldID)
		}
		if _, ok := newPlan.Stages[newID]; !ok {
			return fmt.Errorf("engine: carry target op %d not in new plan", newID)
		}
	}
	// Suspend sources: backlog accumulates externally.
	for _, id := range e.plan.Graph.Sources() {
		for _, g := range e.opGroups(id) {
			g.halted = true
		}
	}
	e.replan = &pendingReplan{
		newPlan:  newPlan,
		carry:    carry,
		started:  e.sched.Now(),
		finished: onDone,
	}
	if e.obs != nil {
		e.replan.span = e.obs.StartAsync("engine.replan",
			obs.Int("carried_ops", len(carry)),
			obs.Int("new_stages", len(newPlan.Stages)))
	}
	return nil
}

// Replanning reports whether a plan switch is in progress.
func (e *Engine) Replanning() bool { return e.replan != nil }

// progressReplan completes the plan switch once the old pipeline drained.
func (e *Engine) progressReplan(now vclock.Time) {
	rp := e.replan
	if rp == nil {
		return
	}
	if !e.drained(rp.carry) {
		return
	}

	// Collect carried state keyed by the NEW operator IDs.
	type carried struct {
		q        []cohort
		wins     map[vclock.Time]*winAcc
		frontier vclock.Time
	}
	carry := make(map[plan.OpID]*carried)
	for oldID, newID := range rp.carry {
		c := &carried{wins: make(map[vclock.Time]*winAcc)}
		for _, g := range e.opGroups(oldID) {
			c.q = g.inQ.popAllInto(c.q)
			for start, w := range g.windows {
				dst := c.wins[start]
				if dst == nil {
					dst = &winAcc{}
					c.wins[start] = dst
				}
				dst.count += w.count
				dst.srcTotal += w.srcTotal
				if w.maxBorn > dst.maxBorn {
					dst.maxBorn = w.maxBorn
				}
			}
			if g.maxProcessedBorn > c.frontier {
				c.frontier = g.maxProcessedBorn
			}
		}
		carry[newID] = c
	}

	// Tear down old flows.
	for _, f := range e.sortedFlows() {
		if f.flow != nil {
			e.net.RemoveFlow(f.flow)
		}
	}
	e.flows = make(map[flowKey]*edgeFlow)
	e.flowsDirty = true

	// Install the new plan and groups.
	e.plan = rp.newPlan
	e.topoDirty = true
	e.buildGroups()
	for newID, c := range carry {
		groups := e.opGroups(newID)
		if len(groups) == 0 {
			continue
		}
		total := 0
		for _, g := range groups {
			total += g.tasks
		}
		for _, g := range groups {
			share := float64(g.tasks) / float64(total)
			for _, co := range c.q {
				g.inQ.push(co.born, co.count*share, co.worth, co.raw)
			}
			if g.windows != nil {
				for start, w := range c.wins {
					g.windows[start] = &winAcc{count: w.count * share, srcTotal: w.srcTotal * share, maxBorn: w.maxBorn}
				}
			}
			if c.frontier > g.maxProcessedBorn {
				g.maxProcessedBorn = c.frontier
			}
		}
	}
	e.rebuildFlows()
	e.refreshGoodputModel()
	e.replan = nil
	if rp.span != nil {
		e.tel.replans.Inc()
		rp.span.Finish()
	}
	if rp.finished != nil {
		rp.finished(now)
	}
}

// drained reports whether every in-flight cohort outside the carried
// operators' custody has flowed out of the old pipeline: all

// non-source input queues and all send queues are empty, and every
// non-carried operator's window buffers have flushed. Window buffers of
// non-carried windowed operators are force-fired once the queues empty —
// the fluid-model equivalent of the paper's reconfiguration at the end of
// the window interval.
func (e *Engine) drained(carry map[plan.OpID]plan.OpID) bool {
	for _, f := range e.flows {
		if !f.q.empty() {
			return false
		}
	}
	carriedOld := make(map[plan.OpID]bool, len(carry))
	for oldID := range carry {
		carriedOld[oldID] = true
	}
	for key, g := range e.groups {
		if g.op.Kind == plan.KindSource || g.op.Kind == plan.KindSink || carriedOld[key.op] {
			continue
		}
		if !g.inQ.empty() {
			return false
		}
	}
	// Queues are empty: force-fire remaining windows of non-carried
	// operators (window boundary reached). If anything fired, drain
	// continues next tick.
	fired := false
	for _, id := range e.plan.Graph.OperatorIDs() {
		if carriedOld[id] {
			continue
		}
		for _, g := range e.opGroups(id) {
			if len(g.windows) == 0 {
				continue
			}
			for _, start := range detutil.SortedKeys(g.windows) {
				w := g.windows[start]
				g.emitted += w.count
				e.fanOut(g, w.maxBorn, w.count, w.srcTotal/w.count, false)
				delete(g.windows, start)
				fired = true
			}
		}
	}
	return !fired
}

// Halt suspends processing for one operator's groups (used by tests and
// by the adaptation layer for manual control).
func (e *Engine) Halt(op plan.OpID) {
	for _, g := range e.opGroups(op) {
		g.halted = true
	}
}

// Resume releases a Halt.
func (e *Engine) Resume(op plan.OpID) {
	for _, g := range e.opGroups(op) {
		g.halted = false
	}
}
