package engine

import (
	"errors"
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/detutil"
	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Migration is one task state transfer between sites, part of a
// reconfiguration.
type Migration struct {
	FromSite topology.SiteID
	ToSite   topology.SiteID
	Bytes    float64
}

// reconfiguration is an in-flight re-assignment or rescale of one stage:
// the stage is suspended until every state transfer completes (§4.1: halt,
// instantiate new tasks, resume).
type reconfiguration struct {
	op        plan.OpID
	newSites  []topology.SiteID
	transfers []*netsim.Transfer
	startedAt vclock.Time
	finished  func(now vclock.Time)
	span      *obs.Span

	// Progress tracking for stall detection: the remaining bytes across
	// all transfers at the last tick that moved data, and when that was.
	lastRemaining  float64
	lastProgressAt vclock.Time
	// firstProgressAt is when the first transfer byte moved — the boundary
	// between the halt phase (suspend + instantiate, waiting on the network
	// to admit the flows) and the transfer phase (state actually moving).
	// Zero until progress is observed.
	firstProgressAt vclock.Time
}

// Reconfigure suspends the stage running `op`, migrates state per
// `migrations` over the WAN, and when the slowest transfer completes,
// reinstates the stage with the new placement (covering task
// re-assignment, scale-out/up, and scale-down). Queued cohorts and window
// state carry over to the new groups; events arriving during the
// transition queue up and are drained afterwards. onDone, if non-nil, is
// called at completion time.
func (e *Engine) Reconfigure(op plan.OpID, newSites []topology.SiteID, migrations []Migration, onDone func(now vclock.Time)) error {
	if e.plan == nil {
		return errors.New("engine: not deployed")
	}
	st, ok := e.plan.Stages[op]
	if !ok {
		return fmt.Errorf("engine: unknown operator %d", op)
	}
	if len(newSites) == 0 {
		return errors.New("engine: empty placement")
	}
	for _, r := range e.reconfigs {
		if r.op == op {
			return fmt.Errorf("engine: operator %d already reconfiguring", op)
		}
	}

	// Suspend only the groups at sites losing tasks: pure scale-outs keep
	// the existing tasks processing while new tasks receive their state
	// partitions; full moves suspend everything (§4.1).
	newCount := make(map[topology.SiteID]int)
	for _, s := range newSites {
		newCount[s]++
	}
	oldCount := make(map[topology.SiteID]int)
	for _, s := range st.Sites {
		oldCount[s]++
	}
	for _, g := range e.opGroups(op) {
		if oldCount[g.site] > newCount[g.site] {
			g.haltedAdapt = true
		}
	}
	rc := &reconfiguration{
		op:             op,
		newSites:       append([]topology.SiteID(nil), newSites...),
		startedAt:      e.sched.Now(),
		finished:       onDone,
		lastProgressAt: e.sched.Now(),
	}
	var migBytes float64
	for _, m := range migrations {
		if m.Bytes <= 0 || m.FromSite == m.ToSite {
			continue
		}
		rc.transfers = append(rc.transfers, e.net.StartTransfer(m.FromSite, m.ToSite, m.Bytes))
		migBytes += m.Bytes
	}
	rc.lastRemaining = migBytes
	if e.obs != nil {
		// The span parents to whatever decision span is active at the
		// call (the controller's), and finishes when the stage resumes.
		rc.span = e.obs.StartAsync("engine.reconfigure",
			obs.Int("op", int(op)),
			obs.String("sites", fmt.Sprint(rc.newSites)),
			obs.Int("transfers", len(rc.transfers)),
			obs.F64("migration_bytes", migBytes))
		e.tel.reconfigs.Inc()
		e.tel.migBytes.Add(migBytes)
	}
	e.reconfigs = append(e.reconfigs, rc)
	return nil
}

// Reconfiguring reports whether the given stage has a pending
// reconfiguration.
func (e *Engine) Reconfiguring(op plan.OpID) bool {
	for _, r := range e.reconfigs {
		if r.op == op {
			return true
		}
	}
	return false
}

// progressReconfigs finalizes reconfigurations whose transfers completed
// and advances the per-reconfiguration progress tracking that stall
// detection (ReconfigStatuses) reads.
func (e *Engine) progressReconfigs(now vclock.Time) {
	remaining := e.reconfigs[:0]
	for _, rc := range e.reconfigs {
		done := true
		var left float64
		for _, tr := range rc.transfers {
			if !tr.Done() {
				done = false
				left += tr.Remaining()
			}
		}
		if !done {
			if left < rc.lastRemaining-1e-6 {
				rc.lastRemaining = left
				rc.lastProgressAt = now
				if rc.firstProgressAt == 0 {
					rc.firstProgressAt = now
				}
			}
			remaining = append(remaining, rc)
			continue
		}
		e.finalizeReconfig(rc, now)
	}
	e.reconfigs = remaining
}

// ReconfigStatus describes one in-flight reconfiguration for the adapt
// layer's supervision: whether it is doomed (a transfer was canceled, an
// endpoint site crashed, or the carrying link is blacked out) or stalled
// (no transfer progress for at least the caller's deadline).
type ReconfigStatus struct {
	Op      plan.OpID
	Age     vclock.Time // time since the reconfiguration started
	Doomed  bool
	Stalled bool
	Reason  string // why it is doomed/stalled ("" when healthy)
}

// ReconfigStatuses surveys every pending reconfiguration. stallAfter is
// the no-progress deadline for the stall verdict (≤ 0 disables stall
// detection; doom detection always runs). Statuses come back in the
// order the reconfigurations were started.
func (e *Engine) ReconfigStatuses(stallAfter vclock.Time) []ReconfigStatus {
	if len(e.reconfigs) == 0 {
		return nil
	}
	now := e.sched.Now()
	out := make([]ReconfigStatus, 0, len(e.reconfigs))
	for _, rc := range e.reconfigs {
		st := ReconfigStatus{Op: rc.op, Age: now - rc.startedAt}
		for _, tr := range rc.transfers {
			if tr.Done() {
				continue
			}
			switch {
			case tr.Canceled():
				st.Doomed = true
				st.Reason = fmt.Sprintf("transfer %d→%d canceled", int(tr.From), int(tr.To))
			case e.siteDown[tr.From]:
				st.Doomed = true
				st.Reason = fmt.Sprintf("source site %d crashed mid-transfer", int(tr.From))
			case e.siteDown[tr.To]:
				st.Doomed = true
				st.Reason = fmt.Sprintf("destination site %d crashed mid-transfer", int(tr.To))
			case e.net.Capacity(tr.From, tr.To, now) <= 0:
				st.Doomed = true
				st.Reason = fmt.Sprintf("link %d→%d blacked out mid-transfer", int(tr.From), int(tr.To))
			}
			if st.Doomed {
				break
			}
		}
		if !st.Doomed && stallAfter > 0 && now-rc.lastProgressAt >= stallAfter {
			st.Stalled = true
			st.Reason = fmt.Sprintf("no transfer progress for %v", time.Duration(now-rc.lastProgressAt))
		}
		out = append(out, st)
	}
	return out
}

// AbortReconfigure cancels the stage's in-flight reconfiguration and
// resumes the old placement: remaining transfers are detached from the
// network, the suspension the reconfiguration held is released, and the
// groups keep the queues and window state they were holding — nothing was
// carried out yet (carried state is only gathered at finalize), so no
// requeue is needed and no stage stays halted. The reconfiguration's
// onDone callback is never invoked.
func (e *Engine) AbortReconfigure(op plan.OpID) error {
	idx := -1
	for i, rc := range e.reconfigs {
		if rc.op == op {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("engine: operator %d is not reconfiguring", op)
	}
	rc := e.reconfigs[idx]
	for _, tr := range rc.transfers {
		if !tr.Done() {
			e.net.CancelTransfer(tr)
		}
	}
	for _, g := range e.opGroups(op) {
		g.haltedAdapt = false
	}
	e.reconfigs = append(e.reconfigs[:idx], e.reconfigs[idx+1:]...)
	now := e.sched.Now()
	if rc.span != nil {
		rc.span.SetAttrs(obs.Bool("aborted", true))
		rc.span.Finish()
	}
	if e.obs != nil {
		e.obs.Emit("engine.reconfigure_aborted",
			obs.Int("op", int(op)),
			obs.Dur("age", time.Duration(now-rc.startedAt)))
	}
	return nil
}

func (e *Engine) finalizeReconfig(rc *reconfiguration, now vclock.Time) {
	old := e.opGroups(rc.op)

	// Gather carried state: queued cohorts, window buffers, frontier.
	var carriedQ []cohort
	carriedWins := make(map[vclock.Time]*winAcc)
	var frontier vclock.Time
	for _, g := range old {
		carriedQ = g.inQ.popAllInto(carriedQ)
		for i := range g.windows {
			w := &g.windows[i]
			dst := carriedWins[w.start]
			if dst == nil {
				dst = &winAcc{}
				carriedWins[w.start] = dst
			}
			dst.count += w.count
			dst.srcTotal += w.srcTotal
			if w.maxBorn > dst.maxBorn {
				dst.maxBorn = w.maxBorn
			}
		}
		if g.maxProcessedBorn > frontier {
			frontier = g.maxProcessedBorn
		}
		delete(e.groups, groupKey{op: rc.op, site: g.site})
	}
	e.topoDirty = true // group set and stage placement are about to change

	// Install the new placement on the plan.
	e.plan.Stages[rc.op].Sites = append([]topology.SiteID(nil), rc.newSites...)

	// Build the new groups and spread the carried state by task share.
	perSite := make(map[topology.SiteID]int)
	for _, s := range rc.newSites {
		perSite[s]++
	}
	total := float64(len(rc.newSites))
	var newGroups []*group
	for s := 0; s < e.top.N(); s++ {
		site := topology.SiteID(s)
		n, ok := perSite[site]
		if !ok {
			continue
		}
		g := e.addGroup(rc.op, site, n)
		g.maxProcessedBorn = frontier
		newGroups = append(newGroups, g)
	}
	for _, g := range newGroups {
		share := float64(g.tasks) / total
		for _, c := range carriedQ {
			g.inQ.push(c.born, c.count*share, c.worth, c.raw)
		}
		if g.windowed {
			for _, start := range detutil.SortedKeys(carriedWins) {
				w := carriedWins[start]
				g.windows = append(g.windows, winSlot{start: start,
					winAcc: winAcc{count: w.count * share, srcTotal: w.srcTotal * share, maxBorn: w.maxBorn}})
			}
		}
	}
	e.rebuildFlows()
	e.refreshGoodputModel()
	if rc.span != nil {
		e.tel.migSeconds.Observe((now - rc.startedAt).Seconds())
		rc.span.Finish()
	}
	// Phase latencies: halt covers suspend→first transfer byte (the whole
	// reconfiguration when no state moved), transfer covers the data motion.
	haltEnd := rc.firstProgressAt
	if haltEnd == 0 {
		haltEnd = now
	}
	e.emitAdaptPhase("halt", "reconfigure", rc.op, haltEnd-rc.startedAt)
	e.emitAdaptPhase("transfer", "reconfigure", rc.op, now-haltEnd)
	if rc.finished != nil {
		rc.finished(now)
	}
}

// Fail revokes all computational resources for the given duration (§8.6):
// processing and data movement stop; external arrivals keep accumulating.
// State survives (localized checkpoints restore it on recovery).
func (e *Engine) Fail(outage vclock.Time) {
	until := e.sched.Now() + outage
	if until > e.failedUntil {
		e.failedUntil = until
	}
	if e.obs != nil {
		e.obs.Emit("engine.fail", obs.Dur("outage", outage))
		e.tel.failures.Inc()
	}
}

// Failed reports whether the engine is currently in a failure outage.
func (e *Engine) Failed() bool { return e.sched.Now() <= e.failedUntil }

// pendingReplan tracks an in-flight plan switch: sources are suspended,
// the old pipeline drains, then the new plan takes over with carried
// state.
type pendingReplan struct {
	newPlan  *physical.Plan
	carry    map[plan.OpID]plan.OpID // old op → new op for state carryover
	started  vclock.Time
	finished func(now vclock.Time)
	span     *obs.Span

	// Drain-progress tracking for stall detection: the in-flight backlog
	// outside the carried operators' custody at the last tick it shrank,
	// and when that was.
	lastBacklog    float64
	lastProgressAt vclock.Time
}

// BeginReplan initiates a query re-plan (§4.3): source emission is
// suspended (external events keep queueing), the in-flight events drain
// through the old plan, and once empty the new physical plan takes over.
// carry maps old operator IDs to new ones for every operator whose state
// and backlog must survive (sources, sinks, and common stateful
// sub-plans). The drain-then-switch models the paper's window-boundary
// reconfiguration and is what makes re-planning the highest-overhead
// technique (Table 2).
func (e *Engine) BeginReplan(newPlan *physical.Plan, carry map[plan.OpID]plan.OpID, onDone func(now vclock.Time)) error {
	if e.plan == nil {
		return errors.New("engine: not deployed")
	}
	if e.replan != nil {
		return errors.New("engine: re-plan already in progress")
	}
	if err := newPlan.Validate(e.top); err != nil {
		return fmt.Errorf("engine: new plan invalid: %w", err)
	}
	for oldID, newID := range carry {
		if _, ok := e.plan.Stages[oldID]; !ok {
			return fmt.Errorf("engine: carry source op %d not in current plan", oldID)
		}
		if _, ok := newPlan.Stages[newID]; !ok {
			return fmt.Errorf("engine: carry target op %d not in new plan", newID)
		}
	}
	// Suspend sources: backlog accumulates externally.
	for _, id := range e.plan.Graph.Sources() {
		for _, g := range e.opGroups(id) {
			g.haltedAdapt = true
		}
	}
	e.replan = &pendingReplan{
		newPlan:        newPlan,
		carry:          carry,
		started:        e.sched.Now(),
		finished:       onDone,
		lastBacklog:    e.drainBacklog(carry),
		lastProgressAt: e.sched.Now(),
	}
	if e.obs != nil {
		e.replan.span = e.obs.StartAsync("engine.replan",
			obs.Int("carried_ops", len(carry)),
			obs.Int("new_stages", len(newPlan.Stages)))
	}
	return nil
}

// Replanning reports whether a plan switch is in progress.
func (e *Engine) Replanning() bool { return e.replan != nil }

// progressReplan completes the plan switch once the old pipeline drained.
func (e *Engine) progressReplan(now vclock.Time) {
	rp := e.replan
	if rp == nil {
		return
	}
	if !e.drained(rp.carry) {
		if backlog := e.drainBacklog(rp.carry); backlog < rp.lastBacklog-1e-6 {
			rp.lastBacklog = backlog
			rp.lastProgressAt = now
		}
		return
	}

	// Collect carried state keyed by the NEW operator IDs.
	type carried struct {
		q        []cohort
		wins     map[vclock.Time]*winAcc
		frontier vclock.Time
	}
	carry := make(map[plan.OpID]*carried)
	for oldID, newID := range rp.carry {
		c := &carried{wins: make(map[vclock.Time]*winAcc)}
		for _, g := range e.opGroups(oldID) {
			c.q = g.inQ.popAllInto(c.q)
			for i := range g.windows {
				w := &g.windows[i]
				dst := c.wins[w.start]
				if dst == nil {
					dst = &winAcc{}
					c.wins[w.start] = dst
				}
				dst.count += w.count
				dst.srcTotal += w.srcTotal
				if w.maxBorn > dst.maxBorn {
					dst.maxBorn = w.maxBorn
				}
			}
			if g.maxProcessedBorn > c.frontier {
				c.frontier = g.maxProcessedBorn
			}
		}
		carry[newID] = c
	}

	// Tear down old flows.
	for _, f := range e.sortedFlows() {
		if f.flow != nil {
			e.net.RemoveFlow(f.flow)
		}
	}
	e.flows = make(map[flowKey]*edgeFlow)
	e.flowsDirty = true
	e.flowsEpoch++

	// Install the new plan and groups.
	e.plan = rp.newPlan
	e.topoDirty = true
	e.buildGroups()
	for newID, c := range carry {
		groups := e.opGroups(newID)
		if len(groups) == 0 {
			continue
		}
		total := 0
		for _, g := range groups {
			total += g.tasks
		}
		for _, g := range groups {
			share := float64(g.tasks) / float64(total)
			for _, co := range c.q {
				g.inQ.push(co.born, co.count*share, co.worth, co.raw)
			}
			if g.windowed {
				for _, start := range detutil.SortedKeys(c.wins) {
					w := c.wins[start]
					g.windows = append(g.windows, winSlot{start: start,
						winAcc: winAcc{count: w.count * share, srcTotal: w.srcTotal * share, maxBorn: w.maxBorn}})
				}
			}
			if c.frontier > g.maxProcessedBorn {
				g.maxProcessedBorn = c.frontier
			}
		}
	}
	e.rebuildFlows()
	e.refreshGoodputModel()
	e.replan = nil
	if rp.span != nil {
		e.tel.replans.Inc()
		rp.span.Finish()
	}
	// The whole drain-then-switch is one halt phase: sources stay suspended
	// until the old pipeline empties, and the swap itself is instantaneous
	// on the virtual clock — no transfer phase. op -1 = whole-plan action.
	e.emitAdaptPhase("halt", "replan", -1, now-rp.started)
	if rp.finished != nil {
		rp.finished(now)
	}
}

// drained reports whether every in-flight cohort outside the carried
// operators' custody has flowed out of the old pipeline: all

// non-source input queues and all send queues are empty, and every
// non-carried operator's window buffers have flushed. Window buffers of
// non-carried windowed operators are force-fired once the queues empty —
// the fluid-model equivalent of the paper's reconfiguration at the end of
// the window interval.
func (e *Engine) drained(carry map[plan.OpID]plan.OpID) bool {
	for _, f := range e.flows {
		if !f.q.empty() {
			return false
		}
	}
	carriedOld := make(map[plan.OpID]bool, len(carry))
	for oldID := range carry {
		carriedOld[oldID] = true
	}
	for key, g := range e.groups {
		if g.op.Kind == plan.KindSource || g.op.Kind == plan.KindSink || carriedOld[key.op] {
			continue
		}
		if !g.inQ.empty() {
			return false
		}
	}
	// Queues are empty: force-fire remaining windows of non-carried
	// operators (window boundary reached). If anything fired, drain
	// continues next tick.
	fired := false
	for _, id := range e.plan.Graph.OperatorIDs() {
		if carriedOld[id] {
			continue
		}
		for _, g := range e.opGroups(id) {
			if len(g.windows) == 0 {
				continue
			}
			for i := range g.windows {
				w := &g.windows[i]
				g.emitted += w.count
				e.fanOut(g, w.maxBorn, w.count, w.srcTotal/w.count, false)
				fired = true
			}
			g.windows = g.windows[:0]
		}
	}
	return !fired
}

// drainBacklog measures the in-flight volume still outside the carried
// operators' custody: cohorts queued at non-carried, non-source/sink
// groups plus everything sitting in edge send queues. progressReplan
// watches it shrink to detect a stalled drain.
func (e *Engine) drainBacklog(carry map[plan.OpID]plan.OpID) float64 {
	var total float64
	for _, key := range detutil.SortedKeysFunc(e.flows, flowKeyLess) {
		total += e.flows[key].q.srcTotal()
	}
	carriedOld := make(map[plan.OpID]bool, len(carry))
	for oldID := range carry {
		carriedOld[oldID] = true
	}
	for _, key := range detutil.SortedKeysFunc(e.groups, groupKeyLess) {
		g := e.groups[key]
		if g.op.Kind == plan.KindSource || g.op.Kind == plan.KindSink || carriedOld[key.op] {
			continue
		}
		total += g.inQ.srcTotal()
	}
	return total
}

// ReplanStalled reports whether the in-flight re-plan's drain has made no
// progress for at least stallAfter (≤ 0 always reports false). A drain
// stalls when the backlog it is waiting on sits upstream of a crashed
// site or a blacked-out link and can never flow out.
func (e *Engine) ReplanStalled(stallAfter vclock.Time) bool {
	rp := e.replan
	if rp == nil || stallAfter <= 0 {
		return false
	}
	return e.sched.Now()-rp.lastProgressAt >= stallAfter
}

// AbortReplan cancels the in-flight plan switch and resumes the old plan:
// sources are released and the old pipeline keeps running unchanged. No
// state was moved yet — the switch only happens after the drain completes
// — so nothing needs requeueing. The re-plan's onDone callback is never
// invoked. Returns an error if no re-plan is in progress.
func (e *Engine) AbortReplan() error {
	rp := e.replan
	if rp == nil {
		return errors.New("engine: no re-plan in progress")
	}
	for _, id := range e.plan.Graph.Sources() {
		for _, g := range e.opGroups(id) {
			g.haltedAdapt = false
		}
	}
	e.replan = nil
	now := e.sched.Now()
	if rp.span != nil {
		rp.span.SetAttrs(obs.Bool("aborted", true))
		rp.span.Finish()
	}
	if e.obs != nil {
		e.obs.Emit("engine.replan_aborted",
			obs.Dur("age", time.Duration(now-rp.started)))
	}
	return nil
}

// Halt suspends processing for one operator's groups (used by tests and
// by the adaptation layer for manual control). Idempotent: repeated
// Halt calls are no-ops, and a manual halt never interferes with the
// suspension an in-flight reconfiguration or re-plan holds — the two are
// tracked separately, so Halt during a replan cannot corrupt the drain.
func (e *Engine) Halt(op plan.OpID) {
	for _, g := range e.opGroups(op) {
		g.haltedManual = true
	}
}

// Resume releases a Halt. Idempotent: resuming an operator that was
// never halted is a no-op, and Resume only clears the manual flag — it
// can never release the suspension held by an in-flight reconfiguration
// or re-plan, so repeated Halt/Resume cycles during a replan are safe.
func (e *Engine) Resume(op plan.OpID) {
	for _, g := range e.opGroups(op) {
		g.haltedManual = false
	}
}
