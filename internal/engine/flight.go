package engine

import (
	"fmt"
	"time"

	"github.com/wasp-stream/wasp/internal/obs"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// Flight recording: one row per simulation tick into the attached
// obs.FlightRecorder — per-stage backlog and processing rate, per-link
// utilization of the engine's flows, the suspended-operator count, and the
// network's in-flight bulk transfers. The warm path (recordFlight) writes
// through cached column handles and performs zero allocations; the handle
// cache is rebuilt — column creation, name formatting, index building, all
// cold — only when the engine's topo/flow cache generations move, i.e.
// after a deploy, reconfiguration, or re-plan changed the structure.

// flightStage caches one stage's column handles plus the previous
// cumulative processed count for per-tick rate deltas.
type flightStage struct {
	op      plan.OpID
	backlog *obs.FlightColumn
	rate    *obs.FlightColumn
	// prevProcessed is the stage's cumulative processed count at the last
	// recorded tick. Sample() resets the underlying counters every
	// monitoring round, so a negative delta means "reset happened" and the
	// current count IS the delta.
	prevProcessed float64
}

// flightLink caches one WAN link's column handle plus a per-tick
// allocation accumulator (several flows can share a link).
type flightLink struct {
	from, to topology.SiteID
	col      *obs.FlightColumn
	alloc    float64
}

// flightCols is the engine's cached view of its flight-recorder columns.
type flightCols struct {
	topoGen  uint64 // generations the cache was built against
	flowsGen uint64
	built    bool

	stages []flightStage
	links  []flightLink
	// linkOf maps a flowList index to its links index (-1 = intra-site).
	linkOf []int

	suspended *obs.FlightColumn
	transfers *obs.FlightColumn
}

// SetFlightRecorder attaches a flight recorder; every subsequent tick
// records one row. Pass nil to detach (the default: zero overhead).
func (e *Engine) SetFlightRecorder(f *obs.FlightRecorder) {
	e.flight = f
	e.fcols = flightCols{}
}

// FlightRecorder returns the attached recorder (nil when detached).
func (e *Engine) FlightRecorder() *obs.FlightRecorder { return e.flight }

// recordFlight appends one row for the tick that just completed.
// Zero-alloc on the warm path; rebuilds the column cache only after
// structural changes.
func (e *Engine) recordFlight(now vclock.Time, dtSec float64) {
	e.ensureTopo()
	e.ensureFlows()
	if e.topoErr != nil {
		return
	}
	fc := &e.fcols
	if !fc.built || fc.topoGen != e.topoGen || fc.flowsGen != e.flowsGen {
		e.rebuildFlightCols()
	}
	e.flight.BeginTick(now)

	suspended := 0
	for i := range fc.stages {
		st := &fc.stages[i]
		var backlog, processed float64
		stageSuspended := false
		for _, g := range e.stageGroups[i] {
			backlog += g.inQ.len()
			processed += g.processed
			if g.suspended() {
				stageSuspended = true
			}
		}
		if stageSuspended {
			suspended++
		}
		st.backlog.Set(backlog)
		delta := processed - st.prevProcessed
		if delta < 0 {
			delta = processed // Sample() reset the counters this tick
		}
		st.prevProcessed = processed
		if dtSec > 0 {
			st.rate.Set(delta / dtSec)
		}
	}
	fc.suspended.Set(float64(suspended))
	fc.transfers.Set(float64(e.net.ActiveTransfers()))

	for i := range fc.links {
		fc.links[i].alloc = 0
	}
	for j, f := range e.flowList {
		if li := fc.linkOf[j]; li >= 0 && f.flow != nil {
			fc.links[li].alloc += f.flow.Allocated()
		}
	}
	for i := range fc.links {
		l := &fc.links[i]
		if cap := e.net.Capacity(l.from, l.to, now); cap > 0 {
			l.col.Set(l.alloc / cap)
		} else {
			l.col.Set(0)
		}
	}
}

// rebuildFlightCols re-derives the column handle cache from the current
// stage order and flow list. Cold path: runs once per structural change.
func (e *Engine) rebuildFlightCols() {
	fc := &e.fcols
	fc.topoGen, fc.flowsGen, fc.built = e.topoGen, e.flowsGen, true

	fc.stages = fc.stages[:0]
	for i, id := range e.stageOrder {
		var processed float64
		for _, g := range e.stageGroups[i] {
			processed += g.processed
		}
		fc.stages = append(fc.stages, flightStage{
			op:            id,
			backlog:       e.flight.Column(fmt.Sprintf("stage%d.backlog", int(id))),
			rate:          e.flight.Column(fmt.Sprintf("stage%d.rate", int(id))),
			prevProcessed: processed,
		})
	}

	fc.links = fc.links[:0]
	fc.linkOf = fc.linkOf[:0]
	seen := make(map[[2]topology.SiteID]int)
	for _, f := range e.flowList {
		if f.flow == nil {
			fc.linkOf = append(fc.linkOf, -1)
			continue
		}
		key := [2]topology.SiteID{f.key.fromSite, f.key.toSite}
		li, ok := seen[key]
		if !ok {
			li = len(fc.links)
			seen[key] = li
			fc.links = append(fc.links, flightLink{
				from: key[0],
				to:   key[1],
				col:  e.flight.Column(fmt.Sprintf("link%d-%d.util", int(key[0]), int(key[1]))),
			})
		}
		fc.linkOf = append(fc.linkOf, li)
	}

	fc.suspended = e.flight.Column("suspended_ops")
	fc.transfers = e.flight.Column("inflight_transfers")
}

// AdaptLatencyBuckets are the bucket bounds (virtual seconds) of the
// wasp_adapt_latency_seconds histograms shared by the engine's
// halt/transfer phases and the adapt layer's detect/plan/resume phases.
// The low end resolves sub-tick phases (the plan phase is instantaneous on
// the virtual clock); the top covers a recovery that waits out a multi-
// minute backoff.
var AdaptLatencyBuckets = []float64{0.25, 0.5, 1, 2, 5, 10, 20, 40, 80, 160, 320, 640}

// emitAdaptPhase records one phase of an adaptation's latency: an
// adapt.latency timeline event plus an observation in the per-phase
// wasp_adapt_latency_seconds histogram. kind names the mechanism
// ("reconfigure", "replan"); op is -1 for whole-plan operations.
func (e *Engine) emitAdaptPhase(phase, kind string, op plan.OpID, d vclock.Time) {
	if e.obs == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	e.obs.Emit("adapt.latency",
		obs.String("phase", phase),
		obs.String("kind", kind),
		obs.Int("op", int(op)),
		obs.Dur("dur", time.Duration(d)))
	e.obs.Registry().Histogram("wasp_adapt_latency_seconds", AdaptLatencyBuckets, "phase", phase).
		Observe(d.Seconds())
}
