package engine

import (
	"math"
	"testing"
	"time"

	"github.com/wasp-stream/wasp/internal/netsim"
	"github.com/wasp-stream/wasp/internal/physical"
	"github.com/wasp-stream/wasp/internal/plan"
	"github.com/wasp-stream/wasp/internal/topology"
	"github.com/wasp-stream/wasp/internal/trace"
	"github.com/wasp-stream/wasp/internal/vclock"
)

// aggRig deploys a two-branch aggregation: src1(0)→chain1(0),
// src2(1)→chain2(1) → windowed combine(2) → sink(2), with asymmetric
// selectivities — the shape that exercises source-equivalent accounting.
type aggRig struct {
	*rig
	chain1, chain2, agg plan.OpID
}

func aggPipeline(t *testing.T, linkMbps topology.Mbps, dropLate bool) *aggRig {
	t.Helper()
	g := plan.NewGraph()
	s1 := g.AddOperator(plan.Operator{Name: "s1", Kind: plan.KindSource, PinnedSite: 0,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 1000})
	c1 := g.AddOperator(plan.Operator{Name: "c1", Kind: plan.KindMap, Splittable: true,
		Selectivity: 0.5, OutEventBytes: 50, CostPerEvent: 1})
	s2 := g.AddOperator(plan.Operator{Name: "s2", Kind: plan.KindSource, PinnedSite: 1,
		Selectivity: 1, OutEventBytes: 100, SourceRate: 2000})
	c2 := g.AddOperator(plan.Operator{Name: "c2", Kind: plan.KindMap, Splittable: true,
		Selectivity: 0.25, OutEventBytes: 50, CostPerEvent: 1})
	agg := g.AddOperator(plan.Operator{Name: "agg", Kind: plan.KindAggregate, Stateful: true,
		Splittable: true, Selectivity: 0.01, OutEventBytes: 40, CostPerEvent: 1,
		Window: 10 * time.Second})
	snk := g.AddOperator(plan.Operator{Name: "k", Kind: plan.KindSink, PinnedSite: 2})
	g.MustConnect(s1, c1)
	g.MustConnect(s2, c2)
	g.MustConnect(c1, agg)
	g.MustConnect(c2, agg)
	g.MustConnect(agg, snk)

	top := threeSites(t, linkMbps)
	net := netsim.New(top)
	sched := vclock.NewScheduler(nil)
	eng := New(Config{DropLate: dropLate, SLO: 10 * time.Second}, top, net, sched)
	pp, err := physical.FromLogical(g)
	if err != nil {
		t.Fatal(err)
	}
	pp.Stages[s1].Sites = []topology.SiteID{0}
	pp.Stages[c1].Sites = []topology.SiteID{0}
	pp.Stages[s2].Sites = []topology.SiteID{1}
	pp.Stages[c2].Sites = []topology.SiteID{1}
	pp.Stages[agg].Sites = []topology.SiteID{2}
	pp.Stages[snk].Sites = []topology.SiteID{2}
	if err := eng.Deploy(pp); err != nil {
		t.Fatal(err)
	}
	eng.Start()
	return &aggRig{
		rig:    &rig{top: top, net: net, sched: sched, eng: eng, g: g, pp: pp},
		chain1: c1, chain2: c2, agg: agg,
	}
}

func TestGoodputConservationHealthy(t *testing.T) {
	r := aggPipeline(t, 800, false)
	r.run(t, 100*time.Second)
	r.eng.SetWorkloadFactor(trace.Steps(0, 0))
	r.run(t, 160*time.Second)
	gen, proc, drop := r.eng.Goodput()
	if gen != 300000 {
		t.Fatalf("gen = %v", gen)
	}
	if drop != 0 {
		t.Fatalf("drop = %v", drop)
	}
	if math.Abs(proc-gen) > gen*0.001 {
		t.Fatalf("processed %v != generated %v (source-equivalent conservation)", proc, gen)
	}
}

func TestGoodputUnderNetworkBottleneck(t *testing.T) {
	// Branch 2's chain output: 2000×0.25×50 B = 25 KB/s; choke 1→2 to
	// 0.1 Mbps (12.5 KB/s): half of branch 2 cannot be transported.
	r := aggPipeline(t, 800, false)
	r.net.SetLinkFactor(1, 2, trace.Constant(0.1/800.0))
	r.run(t, 200*time.Second)
	gen, proc, _ := r.eng.Goodput()
	ratio := proc / gen
	// Branch 2 is 2/3 of the workload and runs at ~50%: expected overall
	// ratio ≈ 1/3 + 2/3×0.5 = 0.67.
	if ratio < 0.55 || ratio > 0.8 {
		t.Fatalf("bottleneck ratio = %.3f, want ~0.67", ratio)
	}
}

func TestDegradeShedsOnlyRawCohorts(t *testing.T) {
	// Same bottleneck with Degrade: events older than the SLO are shed at
	// the aggregation input — but only raw ones; partial aggregates
	// survive. Delivered result volume therefore tracks the processed
	// (post-drop) input, and dropped source-equivalents account for the
	// rest.
	r := aggPipeline(t, 800, true)
	r.net.SetLinkFactor(1, 2, trace.Constant(0.1/800.0))
	r.run(t, 400*time.Second)
	gen, proc, drop := r.eng.Goodput()
	if drop <= 0 {
		t.Fatal("degrade dropped nothing under bottleneck")
	}
	// Conservation with drops: processed + dropped + in-flight ≈ generated.
	if proc+drop > gen*1.01 {
		t.Fatalf("proc %v + drop %v exceeds generated %v", proc, drop, gen)
	}
	// All dropped mass must be raw: no partial aggregate ever represents
	// more than its branch's events — a dropped aggregate would show as a
	// huge single-shot loss. Bound: every drop's worth ≤ 1/0.25 (the
	// smallest chain selectivity) ⇒ drop/gen < 1.
	if drop >= gen {
		t.Fatalf("dropped %v >= generated %v — aggregates were shed", drop, gen)
	}
}

func TestSinkDeliveriesWeightedBySourceEquivalents(t *testing.T) {
	r := aggPipeline(t, 800, false)
	r.run(t, 60*time.Second)
	var weight float64
	for _, d := range r.eng.TakeDeliveries() {
		weight += d.Count
	}
	// 6 windows fire by t=60 (window [50,60) fires exactly at the t=60
	// tick): each carries ~30000 source equivalents (10 s × 3000 ev/s),
	// less a tick's worth still in flight.
	want := 6 * 30000.0
	if weight < want*0.97 || weight > want*1.001 {
		t.Fatalf("delivered src-equivalent weight = %v, want ~%v", weight, want)
	}
}

func TestScaleOutKeepsExistingTasksRunning(t *testing.T) {
	// Scale the aggregate 1→2 with a large (slow) state transfer; the
	// existing task at site 2 must keep processing during the transfer.
	r := aggPipeline(t, 80, false)
	r.run(t, 30*time.Second)
	r.g.Operator(r.agg).StateBytes = 100e6
	err := r.eng.Reconfigure(r.agg, []topology.SiteID{0, 2},
		[]Migration{{FromSite: 2, ToSite: 0, Bytes: 50e6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Sample()
	r.run(t, 34*time.Second) // transfer takes ~5 s at 10 MB/s
	snap := r.eng.Sample()
	if snap.Ops[r.agg].ProcessingRate <= 0 {
		t.Fatal("existing task halted during additive scale-out")
	}
	if !r.eng.Reconfiguring(r.agg) {
		t.Fatal("reconfiguration finished implausibly fast")
	}
	r.run(t, 60*time.Second)
	if r.eng.Reconfiguring(r.agg) {
		t.Fatal("reconfiguration never completed")
	}
	if got := r.eng.Parallelism(r.agg); got != 2 {
		t.Fatalf("parallelism = %d", got)
	}
}

func TestFullMoveSuspendsStage(t *testing.T) {
	r := aggPipeline(t, 80, false)
	r.run(t, 30*time.Second)
	err := r.eng.Reconfigure(r.agg, []topology.SiteID{0},
		[]Migration{{FromSite: 2, ToSite: 0, Bytes: 50e6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Sample()
	r.run(t, 34*time.Second)
	snap := r.eng.Sample()
	if snap.Ops[r.agg].ProcessingRate > 0 {
		t.Fatal("stage processed during a full move")
	}
}

// refreshGoodputModel recomputes frontOps, which group.front and
// fSrcFront cache at wiring-rebuild time — so it must leave the topo
// caches dirty. Regression test for the invalidation the genbump check
// caught: every caller happened to set topoDirty already, but the bump
// belongs with the mutation.
func TestRefreshGoodputModelInvalidatesTopo(t *testing.T) {
	r := pipelineRig(t, Config{}, 1000, 100)
	r.run(t, 100*time.Millisecond) // a few ticks rebuild and clear the caches
	r.eng.topoDirty = false
	r.eng.refreshGoodputModel()
	if !r.eng.topoDirty {
		t.Fatal("refreshGoodputModel left topoDirty false; stale group.front caches would survive")
	}
}
